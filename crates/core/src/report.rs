//! Plain-text table and CSV rendering for experiment outputs.

/// A simple aligned text table with a title.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows). Fields are written straight into
    /// one pre-sized buffer — no per-row join strings, no per-cell
    /// escape copies for the common unquoted case.
    pub fn to_csv(&self) -> String {
        fn push_field(out: &mut String, s: &str) {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                out.push('"');
                for ch in s.chars() {
                    if ch == '"' {
                        out.push('"');
                    }
                    out.push(ch);
                }
                out.push('"');
            } else {
                out.push_str(s);
            }
        }
        fn push_row(out: &mut String, cells: &[String]) {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_field(out, c);
            }
            out.push('\n');
        }
        let text: usize = self.headers.iter().map(String::len).sum::<usize>()
            + self
                .rows
                .iter()
                .flat_map(|r| r.iter().map(String::len))
                .sum::<usize>();
        let separators = (self.rows.len() + 1) * self.headers.len();
        let mut out = String::with_capacity(text + separators);
        push_row(&mut out, &self.headers);
        for row in &self.rows {
            push_row(&mut out, row);
        }
        out
    }
}

/// Format a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format an optional cap in watts.
pub fn cap(c: Option<f64>) -> String {
    match c {
        Some(w) => format!("{w:.0}"),
        None => "uncapped".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows align on the second column.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["hello, world".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_rejected() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}

/// Render a time series as a fixed-size ASCII chart (for the `repro`
/// binary's terminal sketches of the paper's figures). NaN samples (e.g.
/// uncapped cap-trace entries) are drawn at the top of the range.
pub fn ascii_chart(series: &progress::series::TimeSeries, width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 2, "chart too small");
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let finite: Vec<f64> = series.v.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let hi = if hi > lo { hi } else { lo + 1.0 };

    // Resample to the chart width by bucket means.
    let n = series.v.len();
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let a = c * n / width;
            let b = (((c + 1) * n) / width).max(a + 1).min(n);
            let bucket = &series.v[a..b];
            let vals: Vec<f64> = bucket.iter().copied().filter(|v| v.is_finite()).collect();
            if vals.is_empty() {
                hi // NaN bucket draws at the top (uncapped)
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect();

    let mut rows = vec![vec![' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let level = (((v - lo) / (hi - lo)) * (height as f64 - 1.0)).round() as usize;
        let level = level.min(height - 1);
        rows[height - 1 - level][c] = '*';
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>9.1} |")
        } else if i == height - 1 {
            format!("{lo:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>9}  t = {:.0}..{:.0} s\n",
        "",
        "-".repeat(width),
        "",
        series.t.first().copied().unwrap_or(0.0),
        series.t.last().copied().unwrap_or(0.0)
    ));
    out
}

#[cfg(test)]
mod ascii_tests {
    use progress::series::TimeSeries;

    #[test]
    fn chart_renders_flat_and_varying_series() {
        // A flat series maps to a single row (the top row, since the
        // y-axis is floored at 0 and the level equals the maximum).
        let flat: TimeSeries = (0..50).map(|i| (i as f64, 10.0)).collect();
        let s = super::ascii_chart(&flat, 40, 8);
        let rows_with_marks = s.lines().filter(|l| l.contains('*')).count();
        assert_eq!(rows_with_marks, 1, "flat series uses one row:\n{s}");

        let ramp: TimeSeries = (0..50).map(|i| (i as f64, i as f64)).collect();
        let r = super::ascii_chart(&ramp, 40, 8);
        // Every column carries exactly one mark.
        let stars: usize = r.lines().map(|l| l.matches('*').count()).sum();
        assert_eq!(stars, 40);
    }

    #[test]
    fn nan_samples_draw_at_the_top() {
        let mut s = TimeSeries::new();
        for i in 0..20 {
            s.push(i as f64, if i < 10 { f64::NAN } else { 50.0 });
        }
        let chart = super::ascii_chart(&s, 20, 6);
        let top = chart.lines().next().unwrap();
        assert!(top.contains('*'), "NaN half should sit on the top row");
    }

    #[test]
    fn empty_series_is_handled() {
        assert!(super::ascii_chart(&TimeSeries::new(), 20, 5).contains("empty"));
    }
}
