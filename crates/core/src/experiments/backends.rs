//! **Backends** — progress/energy fidelity across MSR backend tiers.
//!
//! The same capped LAMMPS run is executed against each in-tree register
//! file behind the [`MsrBackend`](simnode::hw::MsrBackend) boundary:
//!
//! - `sim` — the seed's closed-form register file, the bit-exact
//!   reference everything else is measured against;
//! - `emulated-0` — the bus/register-file execution engine with zero
//!   latch delay: exercises the whole emulated code path (decode masks,
//!   latch queue, bus accounting) while remaining *bit-identical* to
//!   `sim`, because every value our encoders produce fits the
//!   architected-bit masks;
//! - `emulated-2ms` — the same engine with a realistic ~2 ms RAPL latch
//!   delay and a per-access bus cost, the fidelity tier the cap-latency
//!   discussion in the paper motivates.
//!
//! The cap schedule is the paper's step-after-lead-in shape, so the one
//! behavioural difference the latched tier introduces — the cap landing
//! a couple of daemon ticks late — is visible right at the step. The
//! table reports per-tier progress, power and energy, Δ% against `sim`,
//! and the emulated tiers' bus-occupancy accounting.

use proxyapps::catalog::AppId;
use simnode::hw::BackendKind;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunArtifacts, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length per tier.
    pub duration: Nanos,
    /// Cap applied after the lead-in, W.
    pub cap_w: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            duration: 30 * SEC,
            cap_w: 80.0,
            seed: 1,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            duration: 10 * SEC,
            ..Self::default()
        }
    }

    /// Uncapped lead-in before the cap arrives.
    fn lead_in(&self) -> Nanos {
        self.duration / 5
    }
}

/// The tiers the experiment compares, in table order.
pub fn tiers() -> Vec<(&'static str, BackendKind)> {
    vec![
        ("sim", BackendKind::Sim),
        (
            "emulated-0",
            BackendKind::Emulated {
                write_latency: 0,
                access_cost: 0,
            },
        ),
        ("emulated-2ms", BackendKind::emulated()),
    ]
}

/// One tier's measurements.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Tier name.
    pub tier: &'static str,
    /// Steady-state progress rate.
    pub steady_rate: f64,
    /// Mean package power over the run, W.
    pub mean_power_w: f64,
    /// Mean package power over the settled second half, W.
    pub settled_power_w: f64,
    /// Total package energy, J.
    pub energy_j: f64,
    /// User-space MSR reads issued (bus tiers only).
    pub msr_reads: u64,
    /// User-space MSR writes issued (bus tiers only).
    pub msr_writes: u64,
    /// Writes that went through the latch queue.
    pub latched_writes: u64,
    /// Total bus occupancy, µs.
    pub bus_us: f64,
}

fn cell(tier: &'static str, kind: BackendKind, cfg: &Config) -> Cell {
    let rc = RunConfig::new(AppId::Lammps, cfg.duration)
        .with_schedule(ScheduleSpec::StepAfter {
            lead_in: cfg.lead_in(),
            cap_w: cfg.cap_w,
        })
        .with_seed(cfg.seed)
        .with_backend(kind);
    let a: RunArtifacts = run_app(&rc);
    let bus = a.bus_stats.unwrap_or_default();
    Cell {
        tier,
        steady_rate: a.steady_rate(),
        mean_power_w: a.mean_power(),
        settled_power_w: a.settled_power(),
        energy_j: a.total_energy_j,
        msr_reads: bus.reads,
        msr_writes: bus.writes,
        latched_writes: bus.latched,
        bus_us: bus.bus_ns as f64 / 1e3,
    }
}

/// The full tier comparison.
#[derive(Debug, Clone)]
pub struct Backends {
    /// One cell per tier, `sim` first.
    pub cells: Vec<Cell>,
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Backends {
    let cfg2 = cfg.clone();
    let cells = par_map(tiers(), move |(tier, kind)| cell(tier, kind, &cfg2));
    Backends { cells }
}

impl Backends {
    /// Find a tier's cell.
    pub fn cell(&self, tier: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.tier == tier)
    }

    /// Summary table (Δ% columns are against the `sim` tier).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Backends: progress/energy across MSR backend tiers (same cap schedule)",
            &[
                "Tier",
                "rate",
                "Δrate (%)",
                "mean (W)",
                "settled (W)",
                "energy (J)",
                "Δenergy (%)",
                "rd",
                "wr",
                "latched",
                "bus (us)",
            ],
        );
        let base = &self.cells[0];
        for c in &self.cells {
            let d_rate = 100.0 * (c.steady_rate / base.steady_rate - 1.0);
            let d_energy = 100.0 * (c.energy_j / base.energy_j - 1.0);
            t.row(vec![
                c.tier.to_string(),
                f(c.steady_rate, 0),
                f(d_rate, 3),
                f(c.mean_power_w, 1),
                f(c.settled_power_w, 1),
                f(c.energy_j, 1),
                f(d_energy, 3),
                c.msr_reads.to_string(),
                c.msr_writes.to_string(),
                c.latched_writes.to_string(),
                f(c.bus_us, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_emulated_tier_is_bit_identical_to_sim() {
        let r = run(&Config::quick());
        assert_eq!(r.cells.len(), 3);
        let sim = r.cell("sim").unwrap();
        let emu0 = r.cell("emulated-0").unwrap();
        assert_eq!(
            sim.energy_j.to_bits(),
            emu0.energy_j.to_bits(),
            "zero-latency emulation must not perturb energy: {} vs {}",
            sim.energy_j,
            emu0.energy_j
        );
        assert_eq!(
            sim.steady_rate.to_bits(),
            emu0.steady_rate.to_bits(),
            "zero-latency emulation must not perturb progress"
        );
        // The emulated tier actually went through the bus engine.
        assert!(emu0.msr_writes > 0, "bus accounting must engage");
        assert_eq!(sim.msr_writes, 0, "sim tier has no bus model");
    }

    #[test]
    fn latched_tier_stays_close_and_actually_latches() {
        let r = run(&Config::quick());
        let sim = r.cell("sim").unwrap();
        let latched = r.cell("emulated-2ms").unwrap();
        assert!(
            latched.latched_writes > 0,
            "2 ms tier must route writes through the latch queue"
        );
        let d_rate = (latched.steady_rate / sim.steady_rate - 1.0).abs();
        let d_energy = (latched.energy_j / sim.energy_j - 1.0).abs();
        assert!(
            d_rate < 0.02,
            "ms-scale latch must not move progress materially: Δ {:.3}%",
            d_rate * 100.0
        );
        assert!(
            d_energy < 0.02,
            "ms-scale latch must not move energy materially: Δ {:.3}%",
            d_energy * 100.0
        );
    }
}
