//! **Table VI** — β and MPO characterization of the five measured
//! applications.
//!
//! Exactly the paper's method (§IV.A): run each application at the
//! maximum frequency (3300 MHz) and at 1600 MHz, compute β by inverting
//! Eq. (1) from the two execution speeds, and MPO from the PAPI-style
//! counters. The proxies were *calibrated* to the paper's values, so this
//! experiment closes the loop: the measured characterization must land on
//! Table VI.

use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Reduced frequency used for the β measurement (paper: 1600 MHz).
    pub low_mhz: u32,
    /// Per-run simulated duration.
    pub duration: Nanos,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            low_mhz: 1600,
            duration: 20 * SEC,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            low_mhz: 1600,
            duration: 8 * SEC,
        }
    }
}

/// One characterization row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Display name (paper's Table VI spelling).
    pub app: &'static str,
    /// Measured β.
    pub beta: f64,
    /// Measured MPO.
    pub mpo: f64,
    /// Paper's published β.
    pub beta_paper: f64,
    /// Paper's published MPO.
    pub mpo_paper: f64,
    /// Uncapped steady progress rate at fmax (units/s) — reused by Fig. 4.
    pub r_max: f64,
    /// Uncapped mean package power, W — reused by Fig. 4.
    pub pkg_power_w: f64,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// One row per characterized application.
    pub rows: Vec<Row>,
}

/// Characterize a single application (used by Fig. 4 as well).
pub fn characterize(app: AppId, cfg: &Config, seed: u64) -> Row {
    let fast = run_app(&RunConfig::new(app, cfg.duration).with_seed(seed));
    let slow = run_app(
        &RunConfig::new(app, cfg.duration)
            .with_seed(seed)
            .with_fixed_mhz(cfg.low_mhz),
    );
    let r_fast = fast.steady_rate();
    let r_slow = slow.steady_rate();
    assert!(
        r_fast > 0.0 && r_slow > 0.0,
        "{app:?}: no progress measured"
    );
    let beta = powermodel::beta::beta_from_rates(r_slow, r_fast, cfg.low_mhz as f64, 3300.0);
    let rec = progress::registry::lookup(app.registry_name()).expect("registered");
    Row {
        app: match app {
            AppId::QmcpackDmc => "QMCPACK (DMC)",
            AppId::OpenmcActive => "OpenMC (Active)",
            _ => rec.name,
        },
        beta,
        mpo: fast.mpo(),
        beta_paper: rec.beta_paper.expect("characterized app"),
        mpo_paper: rec.mpo_paper.expect("characterized app"),
        r_max: r_fast,
        pkg_power_w: fast.mean_power(),
    }
}

/// Run the experiment for the paper's five applications.
pub fn run(cfg: &Config) -> Table6 {
    let rows = par_map(AppId::table_vi().to_vec(), |app| characterize(app, cfg, 1));
    Table6 { rows }
}

impl Table6 {
    /// Render like the paper's Table VI, with the published values beside
    /// the measured ones.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table VI: beta and MPO metrics for selected applications",
            &[
                "Application",
                "beta (measured)",
                "beta (paper)",
                "MPO x1e-3 (measured)",
                "MPO x1e-3 (paper)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.app.to_string(),
                f(r.beta, 2),
                f(r.beta_paper, 2),
                f(r.mpo * 1e3, 2),
                f(r.mpo_paper * 1e3, 2),
            ]);
        }
        t
    }

    /// Find a row by registry name.
    pub fn row(&self, app: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.app.starts_with(app))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_beta_and_mpo_land_on_table_vi() {
        let t = run(&Config::quick());
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            assert!(
                (r.beta - r.beta_paper).abs() <= 0.06,
                "{}: measured beta {:.3} vs paper {:.2}",
                r.app,
                r.beta,
                r.beta_paper
            );
            let rel = (r.mpo - r.mpo_paper).abs() / r.mpo_paper;
            assert!(
                rel < 0.30,
                "{}: measured MPO {:.3e} vs paper {:.3e}",
                r.app,
                r.mpo,
                r.mpo_paper
            );
        }
    }

    #[test]
    fn power_ordering_is_physical() {
        let t = run(&Config::quick());
        let lammps = t.row("LAMMPS").unwrap();
        let stream = t.row("STREAM").unwrap();
        // Compute-bound draws more package power than the bandwidth
        // benchmark on this node.
        assert!(
            lammps.pkg_power_w > stream.pkg_power_w,
            "LAMMPS {:.0} W vs STREAM {:.0} W",
            lammps.pkg_power_w,
            stream.pkg_power_w
        );
    }
}
