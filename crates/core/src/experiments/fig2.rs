//! **Fig. 2** — RAPL: application-aware power management.
//!
//! "Under identical power caps, RAPL employs a higher CPU frequency for
//! compute-bound applications and thus distributes more power to the core
//! components." A package-cap sweep over LAMMPS (compute bound) and
//! STREAM (memory bound) measures the settled effective core frequency at
//! each cap; the LAMMPS curve must sit above the STREAM curve.

use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Package caps to sweep, W.
    pub caps_w: Vec<f64>,
    /// Per-run simulated duration (frequency is measured after settling).
    pub duration: Nanos,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            caps_w: (50..=150).step_by(10).map(|w| w as f64).collect(),
            duration: 8 * SEC,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            caps_w: vec![60.0, 90.0, 120.0],
            duration: 5 * SEC,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Package cap, W.
    pub cap_w: f64,
    /// Settled effective frequency for LAMMPS, MHz.
    pub lammps_mhz: f64,
    /// Settled effective frequency for STREAM, MHz.
    pub stream_mhz: f64,
}

/// The reproduced figure data.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// One point per swept cap, ascending.
    pub points: Vec<Point>,
}

fn settled_mhz(app: AppId, cap: f64, duration: Nanos) -> f64 {
    let a = run_app(&RunConfig::new(app, duration).with_schedule(ScheduleSpec::Constant(cap)));
    // Mean effective frequency over the second half of the run.
    let half = simnode::time::secs(duration) / 2.0;
    let s: progress::series::TimeSeries = a
        .telemetry
        .freq
        .iter()
        .filter(|&(t, _)| t >= half)
        .collect();
    s.mean()
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Fig2 {
    let duration = cfg.duration;
    let points = par_map(cfg.caps_w.clone(), move |cap| Point {
        cap_w: cap,
        lammps_mhz: settled_mhz(AppId::Lammps, cap, duration),
        stream_mhz: settled_mhz(AppId::Stream, cap, duration),
    });
    Fig2 { points }
}

impl Fig2 {
    /// Render the frequency-vs-cap table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 2: RAPL application-aware power management (settled frequency vs cap)",
            &["Cap (W)", "LAMMPS f_eff (MHz)", "STREAM f_eff (MHz)"],
        );
        for p in &self.points {
            t.row(vec![f(p.cap_w, 0), f(p.lammps_mhz, 0), f(p.stream_mhz, 0)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_gets_higher_frequency_under_identical_caps() {
        let r = run(&Config::quick());
        for p in &r.points {
            assert!(
                p.lammps_mhz > p.stream_mhz + 50.0,
                "at {} W: LAMMPS {:.0} MHz vs STREAM {:.0} MHz",
                p.cap_w,
                p.lammps_mhz,
                p.stream_mhz
            );
        }
    }

    #[test]
    fn frequency_rises_with_the_cap() {
        let r = run(&Config::quick());
        for w in r.points.windows(2) {
            assert!(
                w[1].lammps_mhz >= w[0].lammps_mhz - 20.0,
                "LAMMPS frequency should rise with the cap"
            );
            assert!(
                w[1].stream_mhz >= w[0].stream_mhz - 20.0,
                "STREAM frequency should rise with the cap"
            );
        }
    }
}
