//! **Cluster hierarchy** — flat vs. rack-tree power arbitration.
//!
//! The Argo stack the paper's NRM belongs to is hierarchical: a global
//! resource manager divides the machine budget across enclaves and each
//! enclave subdivides. This experiment puts the two-level
//! [`cluster::hierarchy::RackArbiter`] head to head with the flat
//! [`cluster::arbiter::PowerArbiter`] on an imbalanced 16-node, 4-rack
//! BSP workload (a linear work ramp laid out rack-major, so the racks
//! carry visibly different demand; halo exchanges priced over the
//! matching 2-level [`Topology::RackTree`]):
//!
//! - **uniform-static** — flat `budget / n`, the application-agnostic
//!   baseline;
//! - **flat-feedback** — the PR-3 flat progress-feedback arbiter, one
//!   global pot re-split every barrier;
//! - **hier-feedback** — the arbiter tree: rack-level re-split every
//!   `outer_period` barriers from upward-aggregated telemetry, node
//!   level every `inner_period`;
//! - **hier-slow-outer** — the same tree with the outer loop at double
//!   period, exposing the latency/stability trade of nested control.
//!
//! Besides makespan/energy/phase splits, the summary reports **grant
//! churn** (mean Σ|Δgrant| per barrier, W) — the stability cost of
//! chasing imbalance — and the minimum budget slack at *both* levels, so
//! conservation is visible per level, not just at the leaves.

use cluster::{
    ramp_weights, run_cluster, ArbiterConfig, ClusterConfig, ClusterError, ClusterOutcome,
    CommConfig, CommPattern, GrantTrace, HierarchyConfig, NodeSpec, Policy, Preset, Topology,
    WorkloadShape, DEFAULT_DAEMON_PERIOD,
};

use crate::report::{f, TextTable};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Racks in the machine.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Barrier-coupled outer iterations.
    pub iters: usize,
    /// Machine-level power budget, W.
    pub budget_w: f64,
    /// Per-node grant floor, W.
    pub min_cap_w: f64,
    /// Per-node grant ceiling, W.
    pub max_cap_w: f64,
    /// Work-ramp endpoints, laid out rack-major: rack 0 holds the
    /// lightest ranks, the last rack the heaviest.
    pub weight_lo: f64,
    /// See `weight_lo`.
    pub weight_hi: f64,
    /// Feedback-controller gain (both levels).
    pub gain: f64,
    /// Rack-level re-split period, barriers.
    pub outer_period: usize,
    /// Node-level re-split period, barriers.
    pub inner_period: usize,
    /// Exchange-phase cost model.
    pub comm: CommConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            racks: 4,
            nodes_per_rack: 4,
            // A multiple of both outer periods (4 and 8), so every
            // variant's rack trace is non-trivial.
            iters: 16,
            // 65 W/node mean, as in the flat cluster experiment: the
            // division policy decides who runs fast.
            budget_w: 1040.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            weight_lo: 1.0,
            weight_hi: 2.6,
            gain: 1.0,
            outer_period: 4,
            inner_period: 1,
            // Same halo/rack-tree wire as the flat experiment, sized for
            // 4 racks of 4.
            comm: CommConfig {
                alpha_s: 2e-6,
                nic_bw: 1.25e9,
                power_coupling: 0.5,
                pattern: CommPattern::HaloExchange {
                    bytes_per_unit: 16.0 * 1024.0 * 1024.0,
                },
                topology: Topology::RackTree {
                    nodes_per_rack: 4,
                    uplink_bw: 2.5e9,
                },
            },
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            iters: 8,
            ..Self::default()
        }
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.racks * self.nodes_per_rack
    }

    /// Scale the experiment to `n` nodes (the `repro cluster --nodes N`
    /// knob) by adding racks of the configured width, holding the
    /// per-node budget density of the default configuration.
    ///
    /// # Panics
    /// Panics when `n` is zero or not a multiple of `nodes_per_rack` —
    /// the CLI validates first and exits 2 instead.
    pub fn with_nodes(mut self, n: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(self.nodes_per_rack),
            "node count must be a positive multiple of the {}-node rack width",
            self.nodes_per_rack
        );
        self.budget_w = self.budget_w / self.nodes() as f64 * n as f64;
        self.racks = n / self.nodes_per_rack;
        self
    }

    /// The node roster: the work ramp is rank-ordered and racks own
    /// contiguous rank spans, so the racks end up with distinctly
    /// different total demand — the imbalance the rack level can see.
    /// One leaky and one low-binned part mix in hardware variability.
    pub fn roster(&self) -> Vec<NodeSpec> {
        let weights = ramp_weights(self.nodes(), self.weight_lo, self.weight_hi);
        weights
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let preset = match i {
                    1 => Preset::Leaky(15.0),
                    2 => Preset::LowBin(2800),
                    _ => Preset::Reference,
                };
                NodeSpec::new(preset, w)
            })
            .collect()
    }

    /// The rack layout for the arbiter tree.
    pub fn hierarchy(&self, outer_period: usize) -> HierarchyConfig {
        HierarchyConfig {
            racks: vec![self.nodes_per_rack; self.racks],
            outer_period,
            inner_period: self.inner_period,
            rack_policy: Policy::ProgressFeedback { gain: self.gain },
            rack_clamps: None,
        }
    }

    /// The [`ClusterConfig`] for one arbitration variant.
    pub fn cluster_config(
        &self,
        policy: Policy,
        hierarchy: Option<HierarchyConfig>,
    ) -> ClusterConfig {
        ClusterConfig {
            nodes: self.roster(),
            iters: self.iters,
            arbiter: ArbiterConfig {
                budget_w: self.budget_w,
                min_cap_w: self.min_cap_w,
                max_cap_w: self.max_cap_w,
                policy,
            },
            shape: WorkloadShape::default(),
            daemon_period: DEFAULT_DAEMON_PERIOD,
            comm: self.comm,
            hierarchy,
        }
    }

    /// The arbitration variants under comparison, in table order.
    pub fn variants(&self) -> Vec<Variant> {
        let feedback = Policy::ProgressFeedback { gain: self.gain };
        vec![
            Variant {
                name: "uniform-static",
                policy: Policy::UniformStatic,
                hierarchy: None,
            },
            Variant {
                name: "flat-feedback",
                policy: feedback,
                hierarchy: None,
            },
            Variant {
                name: "hier-feedback",
                policy: feedback,
                hierarchy: Some(self.hierarchy(self.outer_period)),
            },
            Variant {
                name: "hier-slow-outer",
                policy: feedback,
                hierarchy: Some(self.hierarchy(self.outer_period * 2)),
            },
        ]
    }
}

/// One arbitration scheme under test.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// Node-level policy.
    pub policy: Policy,
    /// Rack tree, or `None` for flat arbitration.
    pub hierarchy: Option<HierarchyConfig>,
}

/// One variant's full run.
#[derive(Debug, Clone)]
pub struct VariantCell {
    /// Variant display name.
    pub name: &'static str,
    /// Everything the cluster run produced.
    pub outcome: ClusterOutcome,
}

/// The experiment result: one cell per variant.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// One cell per variant, in [`Config::variants`] order.
    pub cells: Vec<VariantCell>,
}

/// Mean Σ|Δgrant| between consecutive ticks of a trace, W — how many
/// watts the arbiter moves per barrier (0 for a perfectly static split).
pub fn mean_churn_w(trace: &GrantTrace) -> f64 {
    let ticks = trace.ticks();
    if ticks.len() < 2 {
        return 0.0;
    }
    let moved: f64 = ticks
        .windows(2)
        .map(|w| {
            w[0].granted_w
                .iter()
                .zip(&w[1].granted_w)
                .map(|(a, b)| (b - a).abs())
                .sum::<f64>()
        })
        .sum();
    moved / (ticks.len() - 1) as f64
}

/// Run the experiment: the same cluster under each arbitration variant.
/// Fails only when a generated [`ClusterConfig`] is rejected by
/// [`run_cluster`]; the `repro` CLI surfaces that as an exit-2 error.
pub fn run(cfg: &Config) -> Result<Hierarchy, ClusterError> {
    let jobs = cfg.variants();
    let cfg2 = cfg.clone();
    let cells = par_map(jobs, move |v| {
        Ok(VariantCell {
            name: v.name,
            outcome: run_cluster(&cfg2.cluster_config(v.policy, v.hierarchy))?,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, ClusterError>>()?;
    Ok(Hierarchy { cells })
}

impl Hierarchy {
    /// Find a variant's cell by display name.
    pub fn cell(&self, name: &str) -> Option<&VariantCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Variant comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Cluster hierarchy: flat vs. rack-tree arbitration on an imbalanced 16-node, \
             4-rack BSP workload",
            &[
                "Variant",
                "makespan (s)",
                "energy (kJ)",
                "compute_s",
                "comm_s",
                "slack_s",
                "imbalance",
                "wait frac",
                "churn (W)",
                "min slack (W)",
                "rack slack (W)",
                "excluded",
            ],
        );
        for c in &self.cells {
            let o = &c.outcome;
            let rack_slack = o
                .rack_trace
                .as_ref()
                .map(|r| f(r.min_slack_w(), 1))
                .unwrap_or_else(|| "-".to_string());
            t.row(vec![
                c.name.to_string(),
                f(o.makespan_s, 2),
                f(o.energy_j / 1e3, 2),
                f(o.mean_compute_s(), 3),
                f(o.mean_comm_s(), 3),
                f(o.mean_slack_s(), 3),
                f(o.mean_imbalance_factor(), 2),
                f(o.mean_wait_fraction(), 3),
                f(mean_churn_w(&o.grant_trace), 1),
                f(o.min_budget_slack_w(), 1),
                rack_slack,
                o.excluded_node_ticks().to_string(),
            ]);
        }
        t
    }

    /// Rack-level budget trace: one row per (hierarchical variant, outer
    /// epoch) — how the machine budget was split across racks.
    pub fn rack_trace_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Cluster hierarchy: rack-level budget trace (sub-budgets at every outer epoch)",
            &[
                "Variant",
                "round",
                "granted (W)",
                "budget (W)",
                "slack (W)",
                "reporting racks",
                "min rack (W)",
                "max rack (W)",
            ],
        );
        for c in &self.cells {
            let Some(rack) = &c.outcome.rack_trace else {
                continue;
            };
            for tick in rack.ticks() {
                let min_g = tick.granted_w.iter().cloned().fold(f64::INFINITY, f64::min);
                let max_g = tick
                    .granted_w
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                t.row(vec![
                    c.name.to_string(),
                    tick.round.to_string(),
                    f(tick.total_w, 1),
                    f(tick.budget_w, 1),
                    f(tick.slack_w(), 1),
                    tick.reporting.iter().filter(|r| **r).count().to_string(),
                    f(min_g, 1),
                    f(max_g, 1),
                ]);
            }
        }
        t
    }

    /// Node-level budget trace: one row per (variant, barrier) — leaf
    /// conservation under every scheme, flat or hierarchical.
    pub fn node_trace_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Cluster hierarchy: node-level budget trace (\u{3a3} leaf grants vs. machine \
             budget at every barrier)",
            &[
                "Variant",
                "round",
                "granted (W)",
                "budget (W)",
                "slack (W)",
                "reporting",
                "min grant (W)",
                "max grant (W)",
            ],
        );
        for c in &self.cells {
            for tick in c.outcome.grant_trace.ticks() {
                let min_g = tick.granted_w.iter().cloned().fold(f64::INFINITY, f64::min);
                let max_g = tick
                    .granted_w
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                t.row(vec![
                    c.name.to_string(),
                    tick.round.to_string(),
                    f(tick.total_w, 1),
                    f(tick.budget_w, 1),
                    f(tick.slack_w(), 1),
                    tick.reporting.iter().filter(|r| **r).count().to_string(),
                    f(min_g, 1),
                    f(max_g, 1),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_feedback_beats_uniform_static_makespan() {
        let r = run(&Config::quick()).unwrap();
        assert_eq!(r.cells.len(), 4);
        let uniform = r.cell("uniform-static").expect("baseline ran");
        let hier = r.cell("hier-feedback").expect("tree ran");
        assert!(
            hier.outcome.makespan_s < uniform.outcome.makespan_s,
            "rack-tree feedback must strictly beat uniform-static: {:.2} s vs {:.2} s",
            hier.outcome.makespan_s,
            uniform.outcome.makespan_s
        );
    }

    #[test]
    fn budget_is_conserved_at_both_levels_on_every_tick() {
        let r = run(&Config::quick()).unwrap();
        for c in &r.cells {
            assert!(
                c.outcome.min_budget_slack_w() >= -1e-6,
                "{}: leaf slack {:.3} W",
                c.name,
                c.outcome.min_budget_slack_w()
            );
            if let Some(rack) = &c.outcome.rack_trace {
                assert!(
                    rack.min_slack_w() >= -1e-6,
                    "{}: rack slack {:.3} W",
                    c.name,
                    rack.min_slack_w()
                );
                // Each outer tick also respects the per-rack clamps by
                // construction; spot-check the trace is non-trivial.
                assert!(!rack.is_empty(), "{}: empty rack trace", c.name);
            }
        }
    }

    #[test]
    fn outer_period_sets_the_rack_trace_cadence() {
        let cfg = Config::quick();
        let r = run(&cfg).unwrap();
        let fast = r.cell("hier-feedback").unwrap();
        let slow = r.cell("hier-slow-outer").unwrap();
        let ticks = |c: &VariantCell| c.outcome.rack_trace.as_ref().unwrap().len();
        assert_eq!(ticks(fast), cfg.iters / cfg.outer_period);
        assert_eq!(ticks(slow), cfg.iters / (2 * cfg.outer_period));
        assert!(r
            .cell("flat-feedback")
            .unwrap()
            .outcome
            .rack_trace
            .is_none());
    }

    #[test]
    fn slower_outer_loop_moves_fewer_watts() {
        let r = run(&Config::quick()).unwrap();
        let fast = r.cell("hier-feedback").unwrap();
        let slow = r.cell("hier-slow-outer").unwrap();
        // Half the outer epochs → at most as much cumulative rack-level
        // movement per barrier (the trade the experiment exposes).
        let churn = |c: &VariantCell| mean_churn_w(c.outcome.rack_trace.as_ref().unwrap());
        assert!(
            churn(slow) <= churn(fast) * 1.5 + 1e-9,
            "slow outer loop should not thrash more: {:.1} vs {:.1} W",
            churn(slow),
            churn(fast)
        );
    }
}
