//! **Fig. 4** — Comparison of measured and predicted change in progress.
//!
//! The paper's validation protocol (§VI.2), reproduced:
//!
//! - the *step-function* policy applies each cap from an uncapped state
//!   ("the power cap (and hence, progress) remains stable for a longer
//!   period of time, making it easier to measure the impact");
//! - for each power cap, five measurements of the change in progress are
//!   averaged;
//! - `P_corecap` is the model-estimated `β · P_cap` (Eq. 5);
//! - α is fixed at 2 for all predictions.
//!
//! Expected error structure (what the paper found, and what this
//! simulator's RAPL mechanisms — DDCM fallback, uncore throttling, α
//! drift — reproduce): good mid-range accuracy for compute-bound codes,
//! *under*-estimation at stringent caps, *over*-estimation for the
//! mid-β codes, and gross under-estimation for STREAM once the uncore
//! throttles.

use powermodel::predict::{ProgressModel, PAPER_ALPHA};
use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::experiments::table6;
use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Package caps to sweep, W.
    pub caps_w: Vec<f64>,
    /// Repetitions per cap (paper: 5).
    pub seeds: u64,
    /// Uncapped lead-in before the step.
    pub lead_in: Nanos,
    /// Capped measurement region after the step.
    pub capped: Nanos,
    /// Characterization settings (β, r_max, uncapped power).
    pub characterization: table6::Config,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            caps_w: vec![45.0, 60.0, 75.0, 90.0, 105.0, 120.0, 135.0, 150.0],
            seeds: 5,
            lead_in: 10 * SEC,
            capped: 20 * SEC,
            characterization: table6::Config::default(),
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            caps_w: vec![55.0, 90.0, 125.0],
            seeds: 2,
            lead_in: 6 * SEC,
            capped: 12 * SEC,
            characterization: table6::Config::quick(),
        }
    }
}

/// One (app, cap) validation point, seeds averaged.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Application (Table VI spelling).
    pub app: &'static str,
    /// Package cap, W.
    pub cap_w: f64,
    /// Model-estimated effective core cap `β·P_cap`, W.
    pub corecap_w: f64,
    /// Measured change in progress (app units/s), seeds averaged.
    pub measured_delta: f64,
    /// Population standard deviation of the per-seed measurements.
    pub measured_std: f64,
    /// Model-predicted change in progress (Eq. 7), app units/s.
    pub predicted_delta: f64,
    /// Uncapped rate `r_max` used by the model.
    pub r_max: f64,
    /// Signed percentage error of the prediction vs the measurement.
    pub pct_error: f64,
}

/// Per-application results.
#[derive(Debug, Clone)]
pub struct AppSeries {
    /// Application name.
    pub app: &'static str,
    /// The model used for predictions.
    pub model: ProgressModel,
    /// Points, ascending in cap.
    pub points: Vec<Point>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One series per application (Fig. 4a–4e).
    pub series: Vec<AppSeries>,
}

/// Mean windowed rate over `[t0, t1)` seconds — each 1 s window value is
/// a rate, so the mean over whole windows equals work/time for the region.
fn region_rate(series: &progress::series::TimeSeries, t0: f64, t1: f64) -> f64 {
    series.mean_between(t0, t1)
}

/// Measure the change in progress for one (app, cap, seed).
fn measure_delta(app: AppId, cap: f64, seed: u64, cfg: &Config) -> f64 {
    let duration = cfg.lead_in + cfg.capped;
    let a = run_app(
        &RunConfig::new(app, duration)
            .with_seed(seed)
            .with_schedule(ScheduleSpec::StepAfter {
                lead_in: cfg.lead_in,
                cap_w: cap,
            }),
    );
    let lead_s = simnode::time::secs(cfg.lead_in);
    let end_s = simnode::time::secs(duration);
    // Trim the first 2 s (warm-up / AMG setup tail) and 2 s around the
    // step transition.
    let r_uncapped = region_rate(&a.progress[0], 2.0, lead_s - 0.5);
    let r_capped = region_rate(&a.progress[0], lead_s + 2.0, end_s - 0.5);
    (r_uncapped - r_capped).max(0.0)
}

/// Validate one application.
pub fn run_app_series(app: AppId, cfg: &Config) -> AppSeries {
    let ch = table6::characterize(app, &cfg.characterization, 1);
    let model = ProgressModel::from_uncapped_run(ch.beta, PAPER_ALPHA, ch.pkg_power_w, ch.r_max);

    let jobs: Vec<(f64, u64)> = cfg
        .caps_w
        .iter()
        .flat_map(|&c| (1..=cfg.seeds).map(move |s| (c, s)))
        .collect();
    let cfg2 = cfg.clone();
    let deltas = par_map(jobs.clone(), move |(cap, seed)| {
        measure_delta(app, cap, seed, &cfg2)
    });

    let mut points = Vec::new();
    for (ci, &cap) in cfg.caps_w.iter().enumerate() {
        let vals: Vec<f64> = jobs
            .iter()
            .zip(&deltas)
            .filter(|((c, _), _)| *c == cap)
            .map(|(_, &d)| d)
            .collect();
        let measured = vals.iter().sum::<f64>() / vals.len() as f64;
        let measured_std = (vals
            .iter()
            .map(|v| (v - measured) * (v - measured))
            .sum::<f64>()
            / vals.len() as f64)
            .sqrt();
        let predicted = model.predict_delta(cap);
        let _ = ci;
        // A cap at/above the uncapped draw changes (almost) nothing; a
        // relative error against a near-zero measurement is meaningless
        // (this is also where the paper quotes its 250% outlier), so mark
        // those points NaN and render them as "-".
        let informative = measured > 0.02 * model.r_max;
        points.push(Point {
            app: ch.app,
            cap_w: cap,
            corecap_w: model.corecap(cap),
            measured_delta: measured,
            measured_std,
            predicted_delta: predicted,
            r_max: model.r_max,
            pct_error: if informative {
                powermodel::error::pct_error(predicted, measured)
            } else {
                f64::NAN
            },
        });
    }
    AppSeries {
        app: ch.app,
        model,
        points,
    }
}

/// Run the full experiment over the paper's five applications.
pub fn run(cfg: &Config) -> Fig4 {
    let series = AppId::table_vi()
        .into_iter()
        .map(|app| run_app_series(app, cfg))
        .collect();
    Fig4 { series }
}

impl Fig4 {
    /// Render all series as one table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 4: measured vs predicted change in progress (alpha = 2, seeds averaged)",
            &[
                "Application",
                "P_cap (W)",
                "P_corecap (W)",
                "measured dP",
                "+/- std",
                "predicted dP",
                "dP/r_max (meas)",
                "error %",
            ],
        );
        for s in &self.series {
            for p in &s.points {
                t.row(vec![
                    p.app.to_string(),
                    f(p.cap_w, 0),
                    f(p.corecap_w, 1),
                    f(p.measured_delta, 2),
                    f(p.measured_std, 2),
                    f(p.predicted_delta, 2),
                    f(p.measured_delta / p.r_max, 3),
                    if p.pct_error.is_nan() {
                        "-".to_string()
                    } else {
                        f(p.pct_error, 1)
                    },
                ]);
            }
        }
        t
    }

    /// Find a series by name prefix.
    pub fn series_for(&self, app: &str) -> Option<&AppSeries> {
        self.series.iter().find(|s| s.app.starts_with(app))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared quick run for the assertions below (runs ~a minute of
    /// simulated time per app; release tests keep this cheap).
    fn quick() -> Fig4 {
        run(&Config::quick())
    }

    #[test]
    fn model_tracks_measured_impact_for_compute_bound_apps() {
        let r = quick();
        for app in ["LAMMPS", "QMCPACK", "OpenMC"] {
            let s = r.series_for(app).unwrap();
            for p in &s.points {
                // Both must agree a cap above the uncapped draw is a no-op,
                // and a stringent cap costs real progress.
                if p.cap_w >= 150.0 {
                    assert!(p.measured_delta / p.r_max < 0.05, "{app} @150 W");
                }
                if p.cap_w <= 60.0 {
                    assert!(
                        p.measured_delta / p.r_max > 0.2,
                        "{app} @{} W: measured {:.3} of r_max",
                        p.cap_w,
                        p.measured_delta / p.r_max
                    );
                    assert!(
                        p.predicted_delta / p.r_max > 0.15,
                        "{app} @{} W: predicted {:.3} of r_max",
                        p.cap_w,
                        p.predicted_delta / p.r_max
                    );
                }
            }
        }
    }

    #[test]
    fn model_underestimates_stringent_caps_for_compute_bound() {
        // Paper: "when a more stringent power cap is applied, the model
        // underestimates the impact ... for LAMMPS" (DDCM region).
        let r = quick();
        let s = r.series_for("LAMMPS").unwrap();
        let lowest = &s.points[0];
        assert!(
            lowest.pct_error < 0.0,
            "LAMMPS @{} W: error {:.1}% should be an underestimate",
            lowest.cap_w,
            lowest.pct_error
        );
    }

    #[test]
    fn model_underestimates_stream_badly() {
        // Paper Fig. 4d: the DVFS-only model cannot see uncore throttling.
        let r = quick();
        let s = r.series_for("STREAM").unwrap();
        let mid = s
            .points
            .iter()
            .find(|p| (60.0..130.0).contains(&p.cap_w))
            .unwrap();
        assert!(
            mid.pct_error < -30.0,
            "STREAM @{} W: error {:.1}% should be a large underestimate",
            mid.cap_w,
            mid.pct_error
        );
    }

    #[test]
    fn deltas_grow_as_caps_tighten() {
        let r = quick();
        for s in &r.series {
            let mut prev = f64::INFINITY;
            for p in &s.points {
                // ascending caps → non-increasing measured delta (within
                // noise).
                assert!(
                    p.measured_delta <= prev * 1.15 + 0.05 * p.r_max,
                    "{}: measured delta should shrink as caps rise",
                    s.app
                );
                prev = p.measured_delta.max(1e-9);
            }
        }
    }
}
