//! Daemon load generation: `repro loadgen`.
//!
//! Not a paper artefact — an operational stress harness for the
//! `arbiterd` daemon added alongside the cluster layer. Five scenarios
//! run the same simulated telemetry cohort through increasingly hostile
//! conditions and report what the service's robustness machinery did:
//!
//! | scenario  | wires                         | service                |
//! |-----------|-------------------------------|------------------------|
//! | clean     | lossless                      | defaults               |
//! | overload  | lossless                      | shallow queue + tight rate limit |
//! | hostile   | drops/dups/delays + partition | defaults               |
//! | crash     | hostile                       | defaults, `kill -9` mid-run + snapshot restore |
//! | sharded   | hostile, batched frames       | N shards under the outer coordinator, one shard `kill -9`'d mid-run |
//!
//! Every scenario must end with Σ grants ≤ budget and zero
//! hold-last-grant violations — the table's `invariant` column is a
//! hard pass/fail, not a statistic.

use arbiterd::loadgen::{run_loadgen, FaultKnobs, LoadgenConfig, LoadgenReport};
use arbiterd::ServiceConfig;
use cluster::ConfigError;

use crate::report::TextTable;

/// Load-generation scale knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Simulated telemetry producers per scenario.
    pub clients: usize,
    /// Arbiter shards in the `sharded` scenario (the other scenarios
    /// always run the single-service legacy path).
    pub shards: usize,
    /// Lockstep ticks per scenario.
    pub ticks: u64,
    /// Master seed (telemetry, fault schedules, backoff jitter).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            clients: 2000,
            shards: 4,
            ticks: 120,
            seed: 12,
        }
    }
}

impl Config {
    /// A scale suitable for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            clients: 64,
            shards: 4,
            ticks: 40,
            seed: 12,
        }
    }
}

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario name (see the module table).
    pub scenario: &'static str,
    /// The generator's full report.
    pub report: LoadgenReport,
}

impl Config {
    /// Check the scale knobs, delegating the cross-field constraints
    /// (`shards ≤ clients`, …) to [`LoadgenConfig::validate`]. The
    /// `repro` CLI maps a failure here to exit code 2.
    pub fn validate(&self) -> Result<(), ConfigError> {
        LoadgenConfig {
            clients: self.clients,
            shards: self.shards,
            ticks: self.ticks,
            seed: self.seed,
            ..LoadgenConfig::default()
        }
        .validate()
    }
}

/// All scenarios' outcomes.
#[derive(Debug, Clone)]
pub struct Loadgen {
    /// One row per scenario, in escalation order.
    pub cells: Vec<Cell>,
}

fn base(cfg: &Config) -> LoadgenConfig {
    LoadgenConfig {
        clients: cfg.clients,
        ticks: cfg.ticks,
        seed: cfg.seed,
        ..LoadgenConfig::default()
    }
}

fn hostile_faults(cfg: &Config) -> FaultKnobs {
    FaultKnobs {
        // Partition every 9th client for a window long enough to expire
        // its lease (poll units track ticks closely here).
        partition: Some((cfg.ticks / 4, cfg.ticks / 2, 9)),
        ..FaultKnobs::hostile()
    }
}

/// Run the five scenarios.
pub fn run(cfg: &Config) -> Result<Loadgen, ConfigError> {
    cfg.validate()?;
    let mut cells = Vec::new();

    cells.push(Cell {
        scenario: "clean",
        report: run_loadgen(&LoadgenConfig {
            service: ServiceConfig {
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
            ..base(cfg)
        }),
    });

    cells.push(Cell {
        scenario: "overload",
        report: run_loadgen(&LoadgenConfig {
            service: ServiceConfig {
                queue_depth: (cfg.clients / 4).max(1),
                rate_capacity: 2.0,
                rate_refill: 0.5,
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
            ..base(cfg)
        }),
    });

    cells.push(Cell {
        scenario: "hostile",
        report: run_loadgen(&LoadgenConfig {
            faults: Some(hostile_faults(cfg)),
            service: ServiceConfig {
                snapshot_every: 0,
                ..ServiceConfig::default()
            },
            ..base(cfg)
        }),
    });

    let snap = std::env::temp_dir().join(format!(
        "arbiterd-loadgen-{}-{}.snap",
        std::process::id(),
        cfg.seed
    ));
    cells.push(Cell {
        scenario: "crash",
        report: run_loadgen(&LoadgenConfig {
            faults: Some(hostile_faults(cfg)),
            crash_at: Some((cfg.ticks / 2).max(1)),
            snapshot_path: Some(snap.clone()),
            ..base(cfg)
        }),
    });
    std::fs::remove_file(&snap).ok();

    // The horizontal topology: the cohort spread over `cfg.shards`
    // arbiter shards under the outer budget coordinator, telemetry
    // multiplexed 8 producers per wire, hostile faults dropping and
    // duplicating whole batches, and one shard kill -9'd mid-run while
    // its peers keep serving. Σ ≤ machine budget still holds machine-
    // wide at every tick.
    let shard_snap = std::env::temp_dir().join(format!(
        "arbiterd-loadgen-sharded-{}-{}.snap",
        std::process::id(),
        cfg.seed
    ));
    cells.push(Cell {
        scenario: "sharded",
        report: run_loadgen(&LoadgenConfig {
            shards: cfg.shards,
            batch: 8.min(cfg.clients / cfg.shards.max(1)).max(1),
            faults: Some(hostile_faults(cfg)),
            crash_at: Some((cfg.ticks / 2).max(1)),
            crash_shard: Some(cfg.shards - 1),
            snapshot_path: Some(shard_snap.clone()),
            ..base(cfg)
        }),
    });
    for i in 0..cfg.shards {
        let p = if cfg.shards == 1 {
            shard_snap.clone()
        } else {
            let mut s = shard_snap.clone().into_os_string();
            s.push(format!(".s{i}"));
            s.into()
        };
        std::fs::remove_file(p).ok();
    }

    Ok(Loadgen { cells })
}

impl Loadgen {
    /// Render the scenario table (also the CSV emitted by `--out`).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "arbiterd load generation — robustness counters per scenario",
            &[
                "scenario",
                "clients",
                "shards",
                "ticks",
                "rounds",
                "shed",
                "rate_limited",
                "nacked",
                "leases_expired",
                "reconnects",
                "recovery_ticks",
                "max_sum_w",
                "budget_w",
                // FNV-1a over every tick's machine-wide Σ grants (raw
                // f64 bits): two runs agree here iff their whole Σ
                // traces agree, which is what the CI shard-soak diffs.
                "sum_fp",
                "invariant",
            ],
        );
        for c in &self.cells {
            let r = &c.report;
            t.row(vec![
                c.scenario.to_string(),
                r.clients.to_string(),
                r.shards.to_string(),
                r.ticks.to_string(),
                r.service.rounds.to_string(),
                r.service.shed.to_string(),
                r.service.rate_limited.to_string(),
                r.service.nacked.to_string(),
                r.service.leases_expired.to_string(),
                r.reconnects.to_string(),
                r.recovery_ticks
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                format!("{:.1}", r.max_sum_grants_w),
                format!("{:.1}", r.budget_w),
                format!("{:016x}", r.sum_fingerprint),
                if r.invariant_ok && r.hold_violations == 0 {
                    "ok".to_string()
                } else {
                    "VIOLATED".to_string()
                },
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_hold_the_invariant_at_quick_scale() {
        let r = run(&Config::quick()).expect("quick config is valid");
        assert_eq!(r.cells.len(), 5);
        for c in &r.cells {
            assert!(c.report.invariant_ok, "{} broke Σ ≤ budget", c.scenario);
            assert_eq!(
                c.report.hold_violations, 0,
                "{} broke hold-last-grant",
                c.scenario
            );
        }
        let by_name = |n: &str| {
            &r.cells
                .iter()
                .find(|c| c.scenario == n)
                .expect("scenario present")
                .report
        };
        assert!(
            by_name("overload").service.shed + by_name("overload").service.rate_limited > 0,
            "the overload scenario must actually shed"
        );
        assert!(
            by_name("crash").recovery_ticks.is_some(),
            "the crash scenario must recover"
        );
        assert!(by_name("crash").reconnects >= 64);
        let sharded = by_name("sharded");
        assert_eq!(sharded.shards, Config::quick().shards);
        assert!(
            sharded.recovery_ticks.is_some(),
            "the killed shard must recover"
        );
        assert!(
            sharded.min_granted_seq() > 0,
            "every producer must get granted across shards"
        );
    }

    #[test]
    fn table_rows_match_scenarios() {
        let r = run(&Config::quick()).expect("quick config is valid");
        let t = r.table();
        assert_eq!(t.len(), 5);
        assert!(t.to_csv().contains("recovery_ticks"));
        assert!(t.to_csv().contains("sharded"));
    }

    #[test]
    fn zero_scale_knobs_are_config_errors() {
        let bad = Config {
            clients: 0,
            ..Config::quick()
        };
        assert!(run(&bad).is_err(), "clients = 0 must not panic");
        let bad = Config {
            shards: 0,
            ..Config::quick()
        };
        assert!(run(&bad).is_err(), "shards = 0 must not panic");
    }
}
