//! **Extension: CANDLE under power caps** — the experiment the paper
//! could not run.
//!
//! The paper describes CANDLE's online performance (epochs/s during
//! training, accuracy-bounded completion) but "could not present a
//! description for extracting progress" because TensorFlow had to be
//! installed from prebuilt binaries (§IV.B). The proxy *is*
//! instrumentable, so this extension completes the study: train to the
//! accuracy bound under a cap sweep and record epochs/s, time-to-accuracy
//! and **energy-to-accuracy** — the quantity a power-constrained center
//! actually pays. Because training compute is epoch-count-invariant under
//! caps (the same epochs run, just slower) while package power falls
//! superlinearly with frequency (α > 1), mild caps trade a little time
//! for a meaningful energy saving.

use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Package caps to sweep; `None` = uncapped reference.
    pub caps_w: Vec<Option<f64>>,
    /// Wall-clock budget per run (training stops on accuracy; this is the
    /// safety limit).
    pub budget: Nanos,
    /// Training seed (fixes the accuracy curve, hence the epoch count).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            caps_w: vec![None, Some(120.0), Some(100.0), Some(80.0), Some(60.0)],
            budget: 400 * SEC,
            seed: 7,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            caps_w: vec![None, Some(90.0), Some(60.0)],
            budget: 400 * SEC,
            seed: 7,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Cap (`None` = uncapped).
    pub cap_w: Option<f64>,
    /// Epochs run to reach the accuracy bound.
    pub epochs: u64,
    /// Online performance: epochs per second.
    pub epochs_per_s: f64,
    /// Time to the accuracy bound, seconds.
    pub time_to_accuracy_s: f64,
    /// Energy to the accuracy bound, joules.
    pub energy_to_accuracy_j: f64,
}

/// The sweep.
#[derive(Debug, Clone)]
pub struct CandleExt {
    /// Points in the order of `Config::caps_w`.
    pub points: Vec<Point>,
}

/// Run the experiment.
pub fn run(cfg: &Config) -> CandleExt {
    let budget = cfg.budget;
    let seed = cfg.seed;
    let points = par_map(cfg.caps_w.clone(), move |cap| {
        let mut rc = RunConfig::new(AppId::Candle, budget).with_seed(seed);
        if let Some(w) = cap {
            rc = rc.with_schedule(ScheduleSpec::Constant(w));
        }
        let a = run_app(&rc);
        assert!(
            a.record.all_done,
            "training must reach the accuracy bound within the budget"
        );
        let epochs = a.channel_stats[0].events;
        Point {
            cap_w: cap,
            epochs,
            epochs_per_s: epochs as f64 / a.duration_s,
            time_to_accuracy_s: a.duration_s,
            energy_to_accuracy_j: a.total_energy_j,
        }
    });
    CandleExt { points }
}

impl CandleExt {
    /// Render the sweep.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Extension: CANDLE training under power caps (accuracy-bounded)",
            &[
                "Cap (W)",
                "epochs",
                "epochs/s",
                "time to accuracy (s)",
                "energy to accuracy (kJ)",
            ],
        );
        for p in &self.points {
            t.row(vec![
                crate::report::cap(p.cap_w),
                p.epochs.to_string(),
                f(p.epochs_per_s, 3),
                f(p.time_to_accuracy_s, 1),
                f(p.energy_to_accuracy_j / 1e3, 1),
            ]);
        }
        t
    }

    /// The uncapped reference point.
    pub fn uncapped(&self) -> &Point {
        self.points
            .iter()
            .find(|p| p.cap_w.is_none())
            .expect("config includes an uncapped reference")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_trade_time_for_energy_at_fixed_science() {
        let r = run(&Config::quick());
        let base = *r.uncapped();
        for p in &r.points {
            // Same seed → same accuracy curve → same epoch count: the
            // science is fixed, only speed and energy change.
            assert_eq!(p.epochs, base.epochs, "epoch count must be cap-invariant");
            if let Some(w) = p.cap_w {
                assert!(
                    p.time_to_accuracy_s >= base.time_to_accuracy_s * 0.999,
                    "caps cannot speed training up"
                );
                if w <= 90.0 {
                    assert!(
                        p.energy_to_accuracy_j < base.energy_to_accuracy_j,
                        "a {w:.0} W cap should reduce energy-to-accuracy \
                         ({:.0} vs {:.0} kJ)",
                        p.energy_to_accuracy_j / 1e3,
                        base.energy_to_accuracy_j / 1e3
                    );
                }
            }
        }
    }

    #[test]
    fn epochs_per_second_falls_with_the_cap() {
        let r = run(&Config::quick());
        let mut last = f64::INFINITY;
        for p in &r.points {
            assert!(p.epochs_per_s <= last * 1.001);
            last = p.epochs_per_s;
        }
    }
}
