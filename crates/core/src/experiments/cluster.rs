//! **Cluster** — global power-budget arbitration across a barrier-coupled
//! cluster.
//!
//! The paper measures how capping perturbs one node's progress; its
//! motivating scenario is the machine-level one: a fixed cluster budget
//! that a job manager divides across nodes running a bulk-synchronous
//! application. This experiment builds an imbalanced, heterogeneous
//! 8-node cluster (a linear work ramp, one leaky part, one low-binned
//! part) and runs the identical workload under each [`Policy`]:
//!
//! - **uniform-static** — `budget / n`, the application-agnostic baseline;
//! - **demand-proportional** — watts follow measured draw;
//! - **progress-feedback** — watts follow the barrier critical path.
//!
//! Iterations are compute-phase → exchange-phase: ranks trade halo
//! messages over a 2-level rack tree priced by the alpha-beta model in
//! [`cluster::comm`], and a power-capped node drains its NIC injection
//! queue slower, so watts perturb the wire too. The summary compares
//! makespan, ground-truth energy, the per-phase time split
//! (`compute_s` / `comm_s` / `slack_s`), imbalance factor and
//! barrier-wait fraction; a second table traces budget conservation
//! (Σ grants vs. budget, every arbiter tick, every policy). The expected
//! picture, after Medhat et al.: the progress-aware policy shortens the
//! critical path by funding it with the watts faster ranks were burning
//! at the barrier, strictly beating uniform-static makespan under the
//! same budget — by a smaller margin than under an ideal barrier,
//! because the comm-aware controller stops funding ranks whose lateness
//! is wire time that watts cannot buy back.

use cluster::{
    ramp_weights, run_cluster, ArbiterConfig, ClusterConfig, ClusterError, ClusterOutcome,
    CommConfig, CommPattern, NodeSpec, Policy, Preset, Topology, WorkloadShape,
    DEFAULT_DAEMON_PERIOD,
};

use crate::report::{f, TextTable};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cluster size.
    pub nodes: usize,
    /// Barrier-coupled outer iterations.
    pub iters: usize,
    /// Cluster-wide power budget, W.
    pub budget_w: f64,
    /// Per-node grant floor, W.
    pub min_cap_w: f64,
    /// Per-node grant ceiling, W.
    pub max_cap_w: f64,
    /// Work-ramp endpoints: node 0 carries `weight_lo`, node n-1
    /// `weight_hi`.
    pub weight_lo: f64,
    /// See `weight_lo`.
    pub weight_hi: f64,
    /// Feedback-controller gain.
    pub gain: f64,
    /// Exchange-phase cost model ([`CommConfig::none`] recovers the
    /// ideal-barrier cluster of PR 2 bit for bit).
    pub comm: CommConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            nodes: 8,
            iters: 12,
            // 65 W/node mean: well under the ~145 W uncapped draw, so the
            // division policy actually decides who runs fast.
            budget_w: 520.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            weight_lo: 1.0,
            weight_hi: 2.4,
            gain: 1.0,
            // Halo faces over 10 GbE in 4-node racks with a 2:1
            // oversubscribed uplink: exchanges land at roughly 5-15 % of
            // an iteration, enough to visibly tax the wraparound and
            // cross-rack ranks without drowning the compute signal the
            // arbiter feeds on.
            comm: CommConfig {
                alpha_s: 2e-6,
                nic_bw: 1.25e9,
                power_coupling: 0.5,
                pattern: CommPattern::HaloExchange {
                    bytes_per_unit: 16.0 * 1024.0 * 1024.0,
                },
                topology: Topology::RackTree {
                    nodes_per_rack: 4,
                    uplink_bw: 2.5e9,
                },
            },
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            iters: 6,
            ..Self::default()
        }
    }

    /// The same cluster under an ideal barrier (no exchange) — the PR-2
    /// configuration, used to isolate what the wire changes.
    pub fn ideal_barrier(mut self) -> Self {
        self.comm = CommConfig::none();
        self
    }

    /// Scale the experiment to `n` nodes (the `repro cluster --nodes N`
    /// knob), holding the per-node budget density so the division
    /// problem stays exactly as tight as the default's 65 W/node.
    ///
    /// # Panics
    /// Panics when `n` is zero.
    pub fn with_nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        self.budget_w = self.budget_w / self.nodes as f64 * n as f64;
        self.nodes = n;
        self
    }

    /// The node roster: an imbalanced work ramp over mostly reference
    /// parts, with one leaky and one low-binned node mixed in (the
    /// variability Rountree et al. observe under power limits).
    pub fn roster(&self) -> Vec<NodeSpec> {
        let weights = ramp_weights(self.nodes, self.weight_lo, self.weight_hi);
        weights
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let preset = match i {
                    1 => Preset::Leaky(15.0),
                    2 => Preset::LowBin(2800),
                    _ => Preset::Reference,
                };
                NodeSpec::new(preset, w)
            })
            .collect()
    }

    /// The [`ClusterConfig`] for one policy.
    pub fn cluster_config(&self, policy: Policy) -> ClusterConfig {
        ClusterConfig {
            nodes: self.roster(),
            iters: self.iters,
            arbiter: ArbiterConfig {
                budget_w: self.budget_w,
                min_cap_w: self.min_cap_w,
                max_cap_w: self.max_cap_w,
                policy,
            },
            shape: WorkloadShape::default(),
            daemon_period: DEFAULT_DAEMON_PERIOD,
            comm: self.comm,
            hierarchy: None,
        }
    }

    /// The policies under comparison, in table order.
    pub fn policies(&self) -> [Policy; 3] {
        [
            Policy::UniformStatic,
            Policy::DemandProportional,
            Policy::ProgressFeedback { gain: self.gain },
        ]
    }
}

/// One policy's full run.
#[derive(Debug, Clone)]
pub struct PolicyCell {
    /// Policy display name.
    pub policy: &'static str,
    /// Everything the cluster run produced.
    pub outcome: ClusterOutcome,
}

/// The experiment result: one cell per policy.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// One cell per policy, in [`Config::policies`] order.
    pub cells: Vec<PolicyCell>,
}

/// Run the experiment: the same cluster under each policy. Fails only
/// when a generated [`ClusterConfig`] is rejected by [`run_cluster`];
/// the `repro` CLI surfaces that as an exit-2 configuration error.
pub fn run(cfg: &Config) -> Result<Cluster, ClusterError> {
    let jobs: Vec<Policy> = cfg.policies().to_vec();
    let cfg2 = cfg.clone();
    let cells = par_map(jobs, move |policy| {
        Ok(PolicyCell {
            policy: policy.name(),
            outcome: run_cluster(&cfg2.cluster_config(policy))?,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, ClusterError>>()?;
    Ok(Cluster { cells })
}

impl Cluster {
    /// Find a policy's cell by display name.
    pub fn cell(&self, policy: &str) -> Option<&PolicyCell> {
        self.cells.iter().find(|c| c.policy == policy)
    }

    /// Policy comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Cluster: power-budget arbitration policies on an imbalanced 8-node BSP workload",
            &[
                "Policy",
                "makespan (s)",
                "energy (kJ)",
                "compute_s",
                "comm_s",
                "slack_s",
                "GiB moved",
                "imbalance",
                "wait frac",
                "min slack (W)",
                "excluded",
            ],
        );
        for c in &self.cells {
            let o = &c.outcome;
            t.row(vec![
                c.policy.to_string(),
                f(o.makespan_s, 2),
                f(o.energy_j / 1e3, 2),
                f(o.mean_compute_s(), 3),
                f(o.mean_comm_s(), 3),
                f(o.mean_slack_s(), 3),
                f(o.total_bytes() / (1024.0 * 1024.0 * 1024.0), 2),
                f(o.mean_imbalance_factor(), 2),
                f(o.mean_wait_fraction(), 3),
                f(o.min_budget_slack_w(), 1),
                o.excluded_node_ticks().to_string(),
            ]);
        }
        t
    }

    /// Budget-conservation trace: one row per (policy, arbiter tick).
    pub fn budget_trace_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Cluster: budget-conservation trace (\u{3a3} grants vs. budget at every arbiter tick)",
            &[
                "Policy",
                "round",
                "granted (W)",
                "budget (W)",
                "slack (W)",
                "reporting",
                "min grant (W)",
                "max grant (W)",
                "compute_s",
                "comm_s",
            ],
        );
        // Mean over the nodes that reported this tick (silent nodes are
        // recorded as NaN in the per-phase vectors).
        let reported_mean = |xs: &[f64]| {
            let vals: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        for c in &self.cells {
            for tick in c.outcome.grant_trace.ticks() {
                let min_g = tick.granted_w.iter().cloned().fold(f64::INFINITY, f64::min);
                let max_g = tick
                    .granted_w
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                t.row(vec![
                    c.policy.to_string(),
                    tick.round.to_string(),
                    f(tick.total_w, 1),
                    f(tick.budget_w, 1),
                    f(tick.slack_w(), 1),
                    tick.reporting.iter().filter(|r| **r).count().to_string(),
                    f(min_g, 1),
                    f(max_g, 1),
                    f(reported_mean(&tick.compute_s), 3),
                    f(reported_mean(&tick.comm_s), 3),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_feedback_beats_uniform_static_makespan() {
        let r = run(&Config::quick()).unwrap();
        assert_eq!(r.cells.len(), 3);
        let uniform = r.cell("uniform-static").expect("baseline ran");
        let feedback = r.cell("progress-feedback").expect("feedback ran");
        assert!(
            feedback.outcome.makespan_s < uniform.outcome.makespan_s,
            "progress-aware must strictly beat uniform-static: {:.2} s vs {:.2} s",
            feedback.outcome.makespan_s,
            uniform.outcome.makespan_s
        );
        // Same power budget, shorter run: no extra energy spent.
        assert!(
            feedback.outcome.energy_j < uniform.outcome.energy_j * 1.05,
            "feedback {:.0} J vs uniform {:.0} J",
            feedback.outcome.energy_j,
            uniform.outcome.energy_j
        );
    }

    #[test]
    fn every_policy_conserves_the_budget() {
        let r = run(&Config::quick()).unwrap();
        for c in &r.cells {
            assert!(
                c.outcome.min_budget_slack_w() >= -1e-6,
                "{}: worst slack {:.3} W",
                c.policy,
                c.outcome.min_budget_slack_w()
            );
        }
    }

    #[test]
    fn exchange_phase_is_priced_and_measurably_shifts_the_policy_gap() {
        let wire = run(&Config::quick()).unwrap();
        let ideal = run(&Config::quick().ideal_barrier()).unwrap();
        // The default halo workload actually moves bytes and the policy
        // table's per-phase split sees them: a visible but non-dominant
        // exchange phase on every policy.
        for c in &wire.cells {
            assert!(
                c.outcome.total_bytes() > 0.0,
                "{}: no bytes moved",
                c.policy
            );
            let comm = c.outcome.mean_comm_s();
            let compute = c.outcome.mean_compute_s();
            assert!(
                comm > 0.001 && comm < compute,
                "{}: comm {:.4} s vs compute {:.4} s",
                c.policy,
                comm,
                compute
            );
        }
        for c in &ideal.cells {
            assert_eq!(c.outcome.total_bytes(), 0.0);
            assert_eq!(c.outcome.mean_comm_s(), 0.0);
        }
        // The wire changes the feedback-vs-uniform comparison measurably:
        // part of every rank's iteration is now time watts cannot buy
        // back, so the advantage ratio must move from its ideal-barrier
        // value (in either direction, by more than run-to-run noise —
        // the simulation is deterministic, so any difference is real;
        // we still require a visible margin).
        let gap = |r: &Cluster| {
            let u = r.cell("uniform-static").unwrap().outcome.makespan_s;
            let fb = r.cell("progress-feedback").unwrap().outcome.makespan_s;
            u / fb
        };
        let (g_wire, g_ideal) = (gap(&wire), gap(&ideal));
        assert!(
            (g_wire - g_ideal).abs() > 0.005,
            "halo exchange should shift the feedback advantage: {:.4} (wire) vs {:.4} (ideal)",
            g_wire,
            g_ideal
        );
    }

    #[test]
    fn feedback_reduces_barrier_waste() {
        let r = run(&Config::quick()).unwrap();
        let uniform = r.cell("uniform-static").unwrap();
        let feedback = r.cell("progress-feedback").unwrap();
        assert!(
            feedback.outcome.mean_wait_fraction() < uniform.outcome.mean_wait_fraction(),
            "feedback should shrink barrier waiting: {:.3} vs {:.3}",
            feedback.outcome.mean_wait_fraction(),
            uniform.outcome.mean_wait_fraction()
        );
    }
}
