//! **Faults** — hardened vs. naive control loop under injected MSR faults.
//!
//! The paper's `power-policy` daemon assumes the msr-safe interface always
//! works: every RAPL write latches, every energy read returns fresh data.
//! On production nodes neither holds — msr-safe accesses fail transiently,
//! PKG_ENERGY_STATUS counters stick or jump, and cap writes can latch
//! late. This experiment drives the same workload through three seeded
//! fault scenarios, once with the naive 1 Hz loop ([`nrm::NrmDaemon`]) and
//! once with the hardened loop ([`nrm::ResilientDaemon`]: retry, read-back
//! verification, fallback actuators, safe mode), and compares budget
//! overshoot and progress.
//!
//! Scenarios:
//!
//! 1. **cap-write storm** — every user-space write to PKG_POWER_LIMIT
//!    fails for most of the run, covering the moment the budget arrives;
//! 2. **sneaky latch** — writes *appear* to succeed but the register does
//!    not change for five seconds (only read-back verification notices,
//!    and the naive loop's once-per-second rewrite keeps re-arming the
//!    delay, so its cap never lands at all);
//! 3. **telemetry dropout** — energy-counter reads fail, then the counter
//!    sticks; actuation is healthy throughout, so the right answer is to
//!    hold the cap and *not* panic into safe mode.

use proxyapps::catalog::AppId;
use simnode::faults::{FaultPlan, FaultWindow};
use simnode::hw::{MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT};
use simnode::time::{Nanos, SEC};

use nrm::resilience::ResilienceConfig;

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length per (scenario, loop) cell.
    pub duration: Nanos,
    /// Power budget applied after the lead-in, W.
    pub budget_w: f64,
    /// Fault-plan seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            duration: 60 * SEC,
            budget_w: 80.0,
            seed: 7,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            duration: 30 * SEC,
            ..Self::default()
        }
    }

    /// Uncapped lead-in before the budget arrives.
    fn lead_in(&self) -> Nanos {
        self.duration / 5
    }
}

/// The three fault scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// PKG_POWER_LIMIT writes fail outright for most of the run.
    CapWriteStorm,
    /// Cap writes return success but latch 5 s late (re-armed by every
    /// rewrite).
    SneakyLatch,
    /// Energy-counter reads fail, then the counter sticks.
    TelemetryDropout,
}

impl Scenario {
    /// All scenarios, in table order.
    pub fn all() -> [Scenario; 3] {
        [
            Scenario::CapWriteStorm,
            Scenario::SneakyLatch,
            Scenario::TelemetryDropout,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::CapWriteStorm => "cap-write storm",
            Scenario::SneakyLatch => "sneaky latch",
            Scenario::TelemetryDropout => "telemetry dropout",
        }
    }

    /// The fault plan this scenario installs.
    pub fn plan(self, cfg: &Config) -> FaultPlan {
        let d = cfg.duration;
        match self {
            // The storm opens before the budget arrives (lead-in = d/5)
            // and lifts at 4/5 of the run, leaving room to observe
            // recovery back to the primary actuator.
            Scenario::CapWriteStorm => FaultPlan::new(cfg.seed).write_error(
                MSR_PKG_POWER_LIMIT,
                1.0,
                FaultWindow::new(d / 10, d * 4 / 5),
            ),
            Scenario::SneakyLatch => {
                FaultPlan::new(cfg.seed).delayed_cap_latch(5 * SEC, FaultWindow::ALWAYS)
            }
            Scenario::TelemetryDropout => FaultPlan::new(cfg.seed)
                .read_error(
                    MSR_PKG_ENERGY_STATUS,
                    1.0,
                    FaultWindow::new(d * 2 / 5, d * 3 / 5),
                )
                .stuck_energy(FaultWindow::new(d * 7 / 10, d * 4 / 5)),
        }
    }
}

/// One (scenario, control-loop) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario applied.
    pub scenario: &'static str,
    /// `true` for the hardened loop.
    pub hardened: bool,
    /// Worst budget overshoot after the settling window, W. The software
    /// fallback loops walk one P-state per tick, so compliance takes up to
    /// ~10 s after the budget arrives; this measures what happens *after*
    /// any well-behaved loop had time to converge.
    pub settled_overshoot_w: f64,
    /// Seconds from budget arrival to the first in-budget power sample
    /// (capped at the remaining run length if compliance never happens).
    pub compliance_delay_s: f64,
    /// Steady-state progress rate.
    pub steady_rate: f64,
    /// Mean package power over the settled second half, W.
    pub settled_power_w: f64,
    /// Ticks served by a fallback actuator.
    pub fallback_ticks: usize,
    /// Ticks in safe mode.
    pub safe_mode_ticks: usize,
    /// Ticks whose actuation failed outright.
    pub actuation_failures: usize,
    /// Injected user-space read failures.
    pub reads_failed: u64,
    /// Injected user-space write failures + silently deferred cap writes.
    pub writes_failed: u64,
}

fn cell(scenario: Scenario, hardened: bool, cfg: &Config) -> Cell {
    let schedule = ScheduleSpec::StepAfter {
        lead_in: cfg.lead_in(),
        cap_w: cfg.budget_w,
    };
    let mut rc = RunConfig::new(AppId::Lammps, cfg.duration)
        .with_schedule(schedule)
        .with_faults(scenario.plan(cfg));
    if hardened {
        rc = rc.with_resilience(ResilienceConfig::default());
    }
    let a = run_app(&rc);
    let lead_s = (cfg.lead_in() / SEC) as f64;
    let end_s = (cfg.duration / SEC) as f64;
    // Compliance tolerance: RAPL quantization plus controller slack.
    let tol = 2.0;
    let compliance_delay_s = a
        .telemetry
        .avg_power
        .t
        .iter()
        .zip(&a.telemetry.avg_power.v)
        .find(|&(&t, &v)| t > lead_s + 1.0 && v <= cfg.budget_w + tol)
        .map(|(&t, _)| t - lead_s)
        .unwrap_or(end_s - lead_s);
    // Settling window: the P-state ladder is ~20 steps walked at one per
    // tick, so allow 12 s from budget arrival before judging overshoot.
    let skip = (cfg.lead_in() / SEC) as usize + 12;
    Cell {
        scenario: scenario.name(),
        hardened,
        settled_overshoot_w: a.max_overshoot_w(cfg.budget_w, skip),
        compliance_delay_s,
        steady_rate: a.steady_rate(),
        settled_power_w: a.settled_power(),
        fallback_ticks: a.fallback_ticks(),
        safe_mode_ticks: a.safe_mode_ticks(),
        actuation_failures: a.actuation_failures(),
        reads_failed: a.fault_summary.reads_failed + a.fault_summary.reads_stuck,
        writes_failed: a.fault_summary.writes_failed + a.fault_summary.writes_delayed,
    }
}

/// The full grid, plus a fault-free purity check.
#[derive(Debug, Clone)]
pub struct Faults {
    /// One cell per (scenario, loop).
    pub cells: Vec<Cell>,
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Faults {
    let mut jobs = Vec::new();
    for scenario in Scenario::all() {
        for hardened in [false, true] {
            jobs.push((scenario, hardened));
        }
    }
    let cfg2 = cfg.clone();
    let cells = par_map(jobs, move |(scenario, hardened)| {
        cell(scenario, hardened, &cfg2)
    });
    Faults { cells }
}

/// Run the same config fault-free through both code paths and return the
/// two total energies — they must be identical: an installed-but-empty
/// fault plan may not perturb the simulation.
pub fn purity_check(cfg: &Config) -> (f64, f64) {
    let base = RunConfig::new(AppId::Lammps, cfg.duration).with_schedule(ScheduleSpec::StepAfter {
        lead_in: cfg.lead_in(),
        cap_w: cfg.budget_w,
    });
    let plain = run_app(&base);
    let empty_plan = run_app(&base.clone().with_faults(FaultPlan::new(cfg.seed)));
    (plain.total_energy_j, empty_plan.total_energy_j)
}

impl Faults {
    /// Summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Faults: hardened vs. naive control loop under injected MSR faults",
            &[
                "Scenario",
                "Loop",
                "overshoot (W)",
                "comply (s)",
                "rate",
                "settled (W)",
                "fallback",
                "safe-mode",
                "act-fail",
                "rd-fail",
                "wr-fail",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.scenario.to_string(),
                if c.hardened { "hardened" } else { "naive" }.to_string(),
                f(c.settled_overshoot_w, 1),
                f(c.compliance_delay_s, 0),
                f(c.steady_rate, 0),
                f(c.settled_power_w, 1),
                c.fallback_ticks.to_string(),
                c.safe_mode_ticks.to_string(),
                c.actuation_failures.to_string(),
                c.reads_failed.to_string(),
                c.writes_failed.to_string(),
            ]);
        }
        t
    }

    /// Find a cell.
    pub fn cell(&self, scenario: &str, hardened: bool) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.hardened == hardened)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardened_loop_bounds_overshoot_where_naive_violates() {
        let r = run(&Config::quick());
        assert_eq!(r.cells.len(), 6);
        for scenario in ["cap-write storm", "sneaky latch"] {
            let naive = r.cell(scenario, false).unwrap();
            let hard = r.cell(scenario, true).unwrap();
            assert!(
                naive.settled_overshoot_w > 25.0,
                "{scenario}: naive loop should blow the budget, overshoot {:.1} W",
                naive.settled_overshoot_w
            );
            assert!(
                hard.settled_overshoot_w < 10.0,
                "{scenario}: hardened loop must hold the budget, overshoot {:.1} W",
                hard.settled_overshoot_w
            );
            assert!(
                hard.compliance_delay_s + 5.0 < naive.compliance_delay_s,
                "{scenario}: hardened should comply much sooner ({:.0} s vs {:.0} s)",
                hard.compliance_delay_s,
                naive.compliance_delay_s
            );
            assert!(
                hard.fallback_ticks > 0,
                "{scenario}: hardened loop should engage a fallback actuator"
            );
        }
    }

    #[test]
    fn telemetry_dropout_does_not_trip_safe_mode() {
        let r = run(&Config::quick());
        let hard = r.cell("telemetry dropout", true).unwrap();
        assert!(hard.reads_failed > 0, "dropout must actually fire");
        assert_eq!(
            hard.safe_mode_ticks, 0,
            "sensor loss with healthy actuation must not trip safe mode"
        );
        assert!(
            hard.settled_overshoot_w < 10.0,
            "cap must hold through the dropout, overshoot {:.1} W",
            hard.settled_overshoot_w
        );
        // Progress is preserved relative to the naive loop (which never
        // reads user-space energy and is immune to this scenario).
        let naive = r.cell("telemetry dropout", false).unwrap();
        assert!(
            hard.steady_rate > naive.steady_rate * 0.93,
            "hardened {:.0} vs naive {:.0}",
            hard.steady_rate,
            naive.steady_rate
        );
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let (plain, empty) = purity_check(&Config::quick());
        assert_eq!(
            plain.to_bits(),
            empty.to_bits(),
            "fault machinery must be inert when no fault is active: {plain} vs {empty}"
        );
    }
}
