//! **Fig. 1** — Characterizing online performance.
//!
//! Three uncapped runs reproduce the figure's three panels:
//!
//! - **LAMMPS (left)**: online performance is *consistent* — flat at
//!   ~1080 katom-timesteps/s;
//! - **AMG (center)**: online performance is *inconsistent* — fluctuating
//!   between 2.5 and 3 iterations/s, "needs to be averaged out";
//! - **QMCPACK (right)**: *phased* — VMC1/VMC2/DMC compute blocks at
//!   clearly distinguishable rates.

use progress::series::TimeSeries;
use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// LAMMPS run length.
    pub lammps: Nanos,
    /// AMG run length.
    pub amg: Nanos,
    /// QMCPACK phase budget: VMC1+VMC2 take ~20 s, so this should exceed
    /// that to reach the DMC phase.
    pub qmcpack: Nanos,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            lammps: 30 * SEC,
            amg: 40 * SEC,
            qmcpack: 40 * SEC,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests (still long enough for QMCPACK to
    /// enter DMC).
    pub fn quick() -> Self {
        Self {
            lammps: 10 * SEC,
            amg: 20 * SEC,
            qmcpack: 30 * SEC,
        }
    }
}

/// One panel's data.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Application name.
    pub app: &'static str,
    /// Progress-rate series (1 s windows).
    pub series: TimeSeries,
    /// Phase markers (time s, name).
    pub phases: Vec<(f64, &'static str)>,
}

/// The three panels.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// LAMMPS panel.
    pub lammps: Panel,
    /// AMG panel.
    pub amg: Panel,
    /// QMCPACK panel.
    pub qmcpack: Panel,
}

fn panel(app: AppId, name: &'static str, duration: Nanos) -> Panel {
    let a = run_app(&RunConfig::new(app, duration));
    Panel {
        app: name,
        series: a.progress[0].clone(),
        phases: a
            .record
            .phases
            .iter()
            .map(|&(t, n)| (simnode::time::secs(t), n))
            .collect(),
    }
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Fig1 {
    let mut panels = par_map(
        vec![
            (AppId::Lammps, "LAMMPS", cfg.lammps),
            (AppId::Amg, "AMG", cfg.amg),
            (AppId::Qmcpack, "QMCPACK", cfg.qmcpack),
        ],
        |(app, name, d)| panel(app, name, d),
    );
    let qmcpack = panels.pop().expect("three panels");
    let amg = panels.pop().expect("two left");
    let lammps = panels.pop().expect("one left");
    Fig1 {
        lammps,
        amg,
        qmcpack,
    }
}

impl Fig1 {
    /// Mean rate of a QMCPACK phase (between its marker and the next).
    pub fn qmcpack_phase_rate(&self, phase: &str) -> Option<f64> {
        let phases = &self.qmcpack.phases;
        let idx = phases.iter().position(|(_, n)| *n == phase)?;
        let start = phases[idx].0;
        let end = phases
            .get(idx + 1)
            .map(|&(t, _)| t)
            .unwrap_or(f64::INFINITY);
        // Skip the boundary windows, which straddle two phases.
        Some(self.qmcpack.series.mean_between(start + 1.5, end - 0.5))
    }

    /// Summary table (the figure's headline statistics).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 1: Characterizing online performance (summary statistics)",
            &["Application", "mean rate", "min", "max", "CV"],
        );
        for p in [&self.lammps, &self.amg, &self.qmcpack] {
            t.row(vec![
                p.app.to_string(),
                f(p.series.mean(), 2),
                f(p.series.min(), 2),
                f(p.series.max(), 2),
                f(p.series.cv(), 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lammps_is_flat_amg_fluctuates_qmcpack_is_phased() {
        let r = run(&Config::quick());

        // LAMMPS: consistent (paper: flat line). Drop the partial first
        // and last windows.
        let n = r.lammps.series.len();
        let inner: TimeSeries = r
            .lammps
            .series
            .iter()
            .skip(1)
            .take(n.saturating_sub(2))
            .collect();
        assert!(
            inner.cv() < 0.03,
            "LAMMPS CV {:.4} should be tiny (flat)",
            inner.cv()
        );
        assert!(
            (1000.0..1150.0).contains(&inner.mean()),
            "LAMMPS level {:.0}",
            inner.mean()
        );

        // AMG: inconsistent, in the paper's 2.5-3 band.
        let amg_inner: TimeSeries = r
            .amg
            .series
            .iter()
            .filter(|&(t, _)| t > 4.0) // skip setup
            .collect();
        assert!(
            amg_inner.cv() > 0.05,
            "AMG CV {:.4} should show fluctuation",
            amg_inner.cv()
        );
        let m = amg_inner.mean();
        assert!((2.3..3.2).contains(&m), "AMG mean {m:.2} out of band");

        // QMCPACK: three phases at distinguishable rates.
        let v1 = r.qmcpack_phase_rate("VMC1").expect("VMC1 rate");
        let v2 = r.qmcpack_phase_rate("VMC2").expect("VMC2 rate");
        let dmc = r.qmcpack_phase_rate("DMC").expect("DMC rate");
        assert!(
            v1 > v2 && v2 > dmc,
            "phase rates must be distinct: VMC1={v1:.1} VMC2={v2:.1} DMC={dmc:.1}"
        );
        assert!((14.0..18.0).contains(&dmc), "DMC rate {dmc:.1}");
    }
}
