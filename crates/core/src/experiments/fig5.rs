//! **Fig. 5** — STREAM: comparison of power-limiting techniques.
//!
//! "RAPL is not the best technique to implement power capping for STREAM:
//! DVFS performs better in the range that it is applicable in." Two sweeps
//! over STREAM — RAPL package caps and pinned DVFS frequencies — each
//! yielding (measured average power, progress rate) points. In the power
//! band DVFS can reach, its progress sits above RAPL's at equal power;
//! below the f_min draw, only RAPL (with its DDCM/uncore mechanisms) can
//! go.

use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// RAPL package caps to sweep, W.
    pub caps_w: Vec<f64>,
    /// DVFS frequencies to sweep, MHz.
    pub freqs_mhz: Vec<u32>,
    /// Per-run simulated duration.
    pub duration: Nanos,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            caps_w: (50..=120).step_by(10).map(|w| w as f64).collect(),
            freqs_mhz: (1200..=3300).step_by(300).collect(),
            duration: 12 * SEC,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self {
            // Keep a cap below STREAM's ~60 W draw at f_min so the
            // below-the-DVFS-floor region is actually exercised.
            caps_w: vec![50.0, 90.0, 110.0],
            freqs_mhz: vec![1200, 2100, 3000],
            duration: 8 * SEC,
        }
    }
}

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Technique label.
    pub technique: &'static str,
    /// Knob setting (cap W or frequency MHz).
    pub setting: f64,
    /// Measured mean package power over the settled region, W.
    pub power_w: f64,
    /// Measured progress rate, iterations/s.
    pub rate: f64,
}

/// The figure data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// RAPL sweep points.
    pub rapl: Vec<Point>,
    /// DVFS sweep points.
    pub dvfs: Vec<Point>,
}

fn settled_power(a: &crate::runner::RunArtifacts, duration: Nanos) -> f64 {
    let half = simnode::time::secs(duration) / 2.0;
    let s: progress::series::TimeSeries = a
        .telemetry
        .power
        .iter()
        .filter(|&(t, _)| t >= half)
        .collect();
    s.mean()
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Fig5 {
    let duration = cfg.duration;
    let rapl = par_map(cfg.caps_w.clone(), move |cap| {
        let a = run_app(
            &RunConfig::new(AppId::Stream, duration).with_schedule(ScheduleSpec::Constant(cap)),
        );
        Point {
            technique: "RAPL",
            setting: cap,
            power_w: settled_power(&a, duration),
            rate: a.steady_rate(),
        }
    });
    let dvfs = par_map(cfg.freqs_mhz.clone(), move |mhz| {
        let a = run_app(&RunConfig::new(AppId::Stream, duration).with_fixed_mhz(mhz));
        Point {
            technique: "DVFS",
            setting: mhz as f64,
            power_w: settled_power(&a, duration),
            rate: a.steady_rate(),
        }
    });
    Fig5 { rapl, dvfs }
}

impl Fig5 {
    /// Linear interpolation of the DVFS rate at a power level, if it falls
    /// inside the DVFS-applicable band.
    pub fn dvfs_rate_at_power(&self, power_w: f64) -> Option<f64> {
        let mut pts: Vec<(f64, f64)> = self.dvfs.iter().map(|p| (p.power_w, p.rate)).collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if power_w < pts.first()?.0 || power_w > pts.last()?.0 {
            return None;
        }
        let i = pts
            .partition_point(|&(w, _)| w <= power_w)
            .min(pts.len() - 1);
        if i == 0 {
            return Some(pts[0].1);
        }
        let (w0, r0) = pts[i - 1];
        let (w1, r1) = pts[i];
        if w1 == w0 {
            return Some(r1);
        }
        Some(r0 + (power_w - w0) / (w1 - w0) * (r1 - r0))
    }

    /// Render the two sweeps.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 5: STREAM progress under RAPL caps vs direct DVFS",
            &["Technique", "Setting", "Power (W)", "Progress (it/s)"],
        );
        for p in self.rapl.iter().chain(self.dvfs.iter()) {
            t.row(vec![
                p.technique.to_string(),
                f(p.setting, 0),
                f(p.power_w, 1),
                f(p.rate, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_beats_rapl_at_equal_power_within_its_range() {
        let r = run(&Config::quick());
        let mut compared = 0;
        for cap_point in &r.rapl {
            if let Some(dvfs_rate) = r.dvfs_rate_at_power(cap_point.power_w) {
                compared += 1;
                assert!(
                    dvfs_rate > cap_point.rate,
                    "at {:.0} W: DVFS {dvfs_rate:.2} it/s should beat RAPL {:.2} it/s",
                    cap_point.power_w,
                    cap_point.rate
                );
            }
        }
        assert!(compared >= 1, "sweeps should overlap in power");
    }

    #[test]
    fn rapl_extends_below_the_dvfs_floor() {
        let r = run(&Config::quick());
        let dvfs_floor = r
            .dvfs
            .iter()
            .map(|p| p.power_w)
            .fold(f64::INFINITY, f64::min);
        let rapl_floor = r
            .rapl
            .iter()
            .map(|p| p.power_w)
            .fold(f64::INFINITY, f64::min);
        assert!(
            rapl_floor < dvfs_floor,
            "RAPL ({rapl_floor:.0} W) must reach below DVFS ({dvfs_floor:.0} W)"
        );
    }

    #[test]
    fn both_techniques_trade_progress_for_power() {
        let r = run(&Config::quick());
        for pts in [&r.rapl, &r.dvfs] {
            let mut sorted = pts.clone();
            sorted.sort_by(|a, b| a.power_w.total_cmp(&b.power_w));
            for w in sorted.windows(2) {
                assert!(
                    w[1].rate >= w[0].rate * 0.98,
                    "{}: rate should rise with power",
                    w[0].technique
                );
            }
        }
    }
}
