//! Ablations and model extensions beyond the paper's evaluation.
//!
//! DESIGN.md commits to four: α sensitivity/fitting (the paper fixes
//! α = 2 and observes the real exponent drifting 1–4), a DDCM-aware model
//! correction (the mechanism behind the paper's stringent-cap
//! underestimation), the lossy-vs-lossless monitoring transport, and the
//! simulation-quantum sensitivity check (a pure methodology ablation).

use powermodel::predict::ProgressModel;
use proxyapps::catalog::AppId;
use simnode::config::NodeConfig;
use simnode::ddcm::DutyCycle;
use simnode::time::{Nanos, SEC};

use crate::experiments::fig4;
use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig};

// ---------------------------------------------------------------------
// 1. α sensitivity and fitting
// ---------------------------------------------------------------------

/// Result of the α ablation for one application.
#[derive(Debug, Clone)]
pub struct AlphaAblation {
    /// Application name.
    pub app: &'static str,
    /// MAPE of the paper's fixed α = 2 model, percent.
    pub mape_fixed: f64,
    /// Sum of squared errors of the fixed α = 2 model (the fit objective).
    pub sse_fixed: f64,
    /// Fitted α.
    pub alpha_fit: f64,
    /// MAPE with the fitted α, percent.
    pub mape_fitted: f64,
    /// Sum of squared errors with the fitted α.
    pub sse_fitted: f64,
}

/// Fit α on measured Fig. 4 points for one application and compare the
/// error against the paper's fixed α = 2.
///
/// Returns `None` when fewer than two caps produce an informative
/// (>2 % of `r_max`) measured delta — a one-point fit is meaningless.
/// AMG at `--quick` durations is the practical case: its near-zero
/// measured deltas all fall under the noise floor.
pub fn alpha_ablation(app: AppId, cfg: &fig4::Config) -> Option<AlphaAblation> {
    let series = fig4::run_app_series(app, cfg);
    let data: Vec<(f64, f64)> = series
        .points
        .iter()
        .filter(|p| p.measured_delta > 0.02 * p.r_max)
        .map(|p| (p.corecap_w, p.measured_delta))
        .collect();
    if data.len() < 2 {
        return None;
    }
    let (alpha_fit, sse_fitted) = powermodel::fit::fit_alpha(&series.model, &data);
    let fitted = ProgressModel {
        alpha: alpha_fit,
        ..series.model
    };
    let (mut pred_fixed, mut pred_fit, mut meas) = (vec![], vec![], vec![]);
    let mut sse_fixed = 0.0;
    for &(cap, m) in &data {
        let pf = series.model.predict_delta_at_corecap(cap);
        sse_fixed += (pf - m) * (pf - m);
        pred_fixed.push(pf);
        pred_fit.push(fitted.predict_delta_at_corecap(cap));
        meas.push(m);
    }
    Some(AlphaAblation {
        app: series.app,
        mape_fixed: powermodel::error::mean_absolute_pct_error(&pred_fixed, &meas),
        sse_fixed,
        alpha_fit,
        mape_fitted: powermodel::error::mean_absolute_pct_error(&pred_fit, &meas),
        sse_fitted,
    })
}

// ---------------------------------------------------------------------
// 2. DDCM-aware model correction
// ---------------------------------------------------------------------

/// A model correction that knows RAPL falls back to duty cycling below
/// the DVFS floor: given a core budget, emulate RAPL's (P-state, duty)
/// choice against the node's core power curve, and predict the rate from
/// the resulting *effective* frequency via Eq. (1) extended below f_min.
/// This is the paper's §VI.3 suggestion — "dissociating application
/// characteristics from the exact control knob being used".
pub fn predict_delta_ddcm_aware(
    model: &ProgressModel,
    node: &NodeConfig,
    active_cores: f64,
    p_cap: f64,
) -> f64 {
    let corecap = model.corecap(p_cap);
    let fmax = node.fmax_mhz() as f64;
    let est = |f_mhz: f64, duty: DutyCycle| -> f64 {
        (node.core_power.dynamic(f_mhz, duty, 1.0) + node.core_power.static_power(f_mhz))
            * active_cores
    };
    // RAPL's choice: highest P-state that fits, else duty-cycle at fmin.
    let mut f_eff = node.ladder.fmin_mhz() as f64;
    let mut fits = false;
    for p in node.ladder.iter().rev() {
        let fm = node.ladder.mhz(p) as f64;
        if est(fm, DutyCycle::FULL) <= corecap {
            f_eff = fm;
            fits = true;
            break;
        }
    }
    if !fits {
        let fmin = node.ladder.fmin_mhz() as f64;
        let duty = DutyCycle::all()
            .rev()
            .find(|&d| est(fmin, d) <= corecap)
            .unwrap_or(DutyCycle::MIN);
        f_eff = fmin * duty.fraction();
    }
    // Eq. (1)/(3) on the effective frequency.
    let rate = model.r_max / (model.beta * (fmax / f_eff - 1.0) + 1.0);
    model.r_max - rate
}

/// Result of the DDCM-aware correction ablation.
#[derive(Debug, Clone)]
pub struct DdcmAblation {
    /// Application name.
    pub app: &'static str,
    /// Stringent-cap MAPE of the base (α = 2) model, percent.
    pub mape_base: f64,
    /// Stringent-cap MAPE of the DDCM-aware correction, percent.
    pub mape_corrected: f64,
}

/// Compare the base model against the DDCM-aware correction on stringent
/// caps for a compute-bound application. The sweep is pinned to the DDCM
/// region (caps low enough that even `f_min` exceeds the core budget,
/// ~25–35 W on the default node) regardless of the Fig. 4 cap list.
pub fn ddcm_ablation(cfg: &fig4::Config) -> DdcmAblation {
    let node = NodeConfig::default();
    let mut cfg = cfg.clone();
    cfg.caps_w = vec![25.0, 30.0, 35.0];
    let series = fig4::run_app_series(AppId::Lammps, &cfg);
    let stringent: Vec<&fig4::Point> = series
        .points
        .iter()
        .filter(|p| p.measured_delta > 0.0)
        .collect();
    assert!(!stringent.is_empty(), "need stringent caps in the sweep");
    let (mut base, mut corr, mut meas) = (vec![], vec![], vec![]);
    for p in stringent {
        base.push(series.model.predict_delta(p.cap_w));
        corr.push(predict_delta_ddcm_aware(
            &series.model,
            &node,
            node.cores as f64,
            p.cap_w,
        ));
        meas.push(p.measured_delta);
    }
    DdcmAblation {
        app: series.app,
        mape_base: powermodel::error::mean_absolute_pct_error(&base, &meas),
        mape_corrected: powermodel::error::mean_absolute_pct_error(&corr, &meas),
    }
}

// ---------------------------------------------------------------------
// 3. Lossy vs lossless monitoring transport
// ---------------------------------------------------------------------

/// Result of the monitoring-transport ablation.
#[derive(Debug, Clone)]
pub struct TransportAblation {
    /// Zero-valued windows with the lossless transport.
    pub zeros_lossless: usize,
    /// Zero-valued windows with the lossy transport.
    pub zeros_lossy: usize,
    /// Events dropped by the lossy transport.
    pub dropped: u64,
    /// Relative error of the lossy monitor's total observed work against
    /// the application-side truth.
    pub work_undercount: f64,
}

/// Run LAMMPS — a *bursty* reporter (~27 reports/s against a 1 Hz
/// collection poll) — through both transports. A small subscriber queue
/// silently discards most of the burst, exactly the class of framework
/// flaw the paper blames for OpenMC's zero readings.
pub fn transport_ablation(duration: Nanos) -> TransportAblation {
    let lossless = run_app(&RunConfig::new(AppId::Lammps, duration));
    let lossy = run_app(&RunConfig::new(AppId::Lammps, duration).with_lossy_monitoring(4));
    let truth = lossy.channel_stats[0].sum;
    let seen: f64 = lossy.progress[0].v.iter().sum();
    TransportAblation {
        zeros_lossless: lossless.progress[0].zero_count(),
        zeros_lossy: lossy.progress[0].zero_count(),
        dropped: lossy.dropped_events,
        work_undercount: if truth > 0.0 { 1.0 - seen / truth } else { 0.0 },
    }
}

// ---------------------------------------------------------------------
// 4. Thermal headroom (opt-in thermal model)
// ---------------------------------------------------------------------

/// Result of the thermal-headroom ablation.
#[derive(Debug, Clone)]
pub struct ThermalAblation {
    /// Settled junction temperature uncapped, °C.
    pub temp_uncapped_c: f64,
    /// Settled junction temperature under the cap, °C.
    pub temp_capped_c: f64,
    /// Cap applied, W.
    pub cap_w: f64,
}

/// Run LAMMPS with the opt-in thermal model, uncapped and capped, and
/// report the settled junction temperatures — the "thermal headroom" the
/// paper's related work (Bhalachandra et al.) credits power capping with
/// creating.
pub fn thermal_ablation(cap_w: f64, duration: Nanos) -> ThermalAblation {
    let run_temp = |cap: Option<f64>| {
        let mut rc = RunConfig::new(AppId::Lammps, duration);
        rc.node.thermal = Some(simnode::thermal::ThermalConfig::default());
        if let Some(w) = cap {
            rc.schedule = crate::runner::ScheduleSpec::Constant(w);
        }
        // The telemetry doesn't carry temperature; run the node directly
        // via the artifacts' energy: recompute the steady temperature from
        // settled power through the same RC model.
        let a = run_app(&rc);
        simnode::thermal::ThermalConfig::default().steady_state_c(a.settled_power())
    };
    ThermalAblation {
        temp_uncapped_c: run_temp(None),
        temp_capped_c: run_temp(Some(cap_w)),
        cap_w,
    }
}

// ---------------------------------------------------------------------
// 5. Simulation-quantum sensitivity
// ---------------------------------------------------------------------

/// Steady LAMMPS rate at a given simulation quantum.
pub fn rate_at_quantum(quantum: Nanos) -> f64 {
    let mut rc = RunConfig::new(AppId::Lammps, 6 * SEC);
    rc.node.quantum = quantum;
    run_app(&rc).steady_rate()
}

/// Render all ablations as tables (used by the `repro` binary).
pub fn tables(cfg: &fig4::Config) -> Vec<TextTable> {
    let mut out = Vec::new();

    let mut t = TextTable::new(
        "Ablation: alpha fixed at 2 vs fitted (per-app MAPE of dP)",
        &[
            "Application",
            "MAPE a=2 (%)",
            "alpha fitted",
            "MAPE fitted (%)",
        ],
    );
    for app in [AppId::QmcpackDmc, AppId::Lammps, AppId::Amg] {
        match alpha_ablation(app, cfg) {
            Some(a) => t.row(vec![
                a.app.to_string(),
                f(a.mape_fixed, 1),
                f(a.alpha_fit, 2),
                f(a.mape_fitted, 1),
            ]),
            // Too few informative caps to fit at this scale (AMG under
            // --quick): report the row as unavailable instead of dying.
            None => t.row(vec![
                app.registry_name().into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        };
    }
    out.push(t);

    let d = ddcm_ablation(cfg);
    let mut t = TextTable::new(
        "Ablation: DDCM-aware correction on stringent caps",
        &["Application", "MAPE base (%)", "MAPE DDCM-aware (%)"],
    );
    t.row(vec![
        d.app.to_string(),
        f(d.mape_base, 1),
        f(d.mape_corrected, 1),
    ]);
    out.push(t);

    let th = thermal_ablation(90.0, 12 * SEC);
    let mut t = TextTable::new(
        "Ablation: thermal headroom from capping (LAMMPS, RC junction model)",
        &["cap (W)", "T uncapped (C)", "T capped (C)", "headroom (C)"],
    );
    t.row(vec![
        f(th.cap_w, 0),
        f(th.temp_uncapped_c, 1),
        f(th.temp_capped_c, 1),
        f(th.temp_uncapped_c - th.temp_capped_c, 1),
    ]);
    out.push(t);

    let tr = transport_ablation(30 * SEC);
    let mut t = TextTable::new(
        "Ablation: monitoring transport (LAMMPS burst reporter, 30 s)",
        &[
            "zeros lossless",
            "zeros lossy",
            "dropped",
            "work undercount",
        ],
    );
    t.row(vec![
        tr.zeros_lossless.to_string(),
        tr.zeros_lossy.to_string(),
        tr.dropped.to_string(),
        f(tr.work_undercount, 3),
    ]);
    out.push(t);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::time::US;

    #[test]
    fn fitted_alpha_does_not_lose_to_fixed_alpha() {
        // The fit minimizes SSE (its objective); MAPE is descriptive and
        // can disagree on noisy data, so the guarantee is on SSE.
        let a = alpha_ablation(AppId::QmcpackDmc, &fig4::Config::quick())
            .expect("QMCPACK has informative deltas even at quick scale");
        assert!(
            a.sse_fitted <= a.sse_fixed + 1e-12,
            "fit SSE ({:.4}) must be at least as good as fixed ({:.4})",
            a.sse_fitted,
            a.sse_fixed
        );
        assert!((0.5..4.5).contains(&a.alpha_fit));
    }

    #[test]
    fn ddcm_aware_correction_helps_at_stringent_caps() {
        let d = ddcm_ablation(&fig4::Config::quick());
        assert!(
            d.mape_corrected < d.mape_base,
            "DDCM-aware MAPE {:.1}% should beat base {:.1}%",
            d.mape_corrected,
            d.mape_base
        );
    }

    #[test]
    fn lossy_transport_silently_undercounts_bursty_reporters() {
        let t = transport_ablation(20 * SEC);
        assert!(t.dropped > 0, "small queue must drop under 27 reports/s");
        assert!(
            t.work_undercount > 0.5,
            "monitor should see a small fraction of the work, lost {:.2}",
            t.work_undercount
        );
        assert!(
            t.zeros_lossy >= t.zeros_lossless,
            "lossy transport cannot have fewer zero windows"
        );
    }

    #[test]
    fn capping_creates_thermal_headroom_end_to_end() {
        let th = thermal_ablation(90.0, 8 * SEC);
        assert!(
            th.temp_uncapped_c - th.temp_capped_c > 10.0,
            "90 W cap should cool the package by >10 C: {:.1} vs {:.1}",
            th.temp_uncapped_c,
            th.temp_capped_c
        );
    }

    #[test]
    fn results_are_insensitive_to_the_simulation_quantum() {
        let fine = rate_at_quantum(50 * US);
        let coarse = rate_at_quantum(200 * US);
        let rel = (fine - coarse).abs() / fine;
        assert!(
            rel < 0.02,
            "quantum sensitivity {rel:.3} too high ({fine:.1} vs {coarse:.1})"
        );
    }
}
