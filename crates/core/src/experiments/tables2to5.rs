//! **Tables II–V** — application descriptions, the interview
//! questionnaire, its answers, and the category/metric assignments.
//!
//! These are the paper's qualitative artefacts; here they render from the
//! `progress::registry` data, and the consistency between the Table IV
//! answers and the Table V categories is *derived* (and tested) rather
//! than asserted.

use progress::registry::registry;
use progress::taxonomy::QUESTIONS;

use crate::report::TextTable;

/// Render Table II (application descriptions).
pub fn table2() -> TextTable {
    let mut t = TextTable::new(
        "Table II: Description of applications",
        &["Application", "Description"],
    );
    for r in registry() {
        t.row(vec![r.name.to_string(), r.description.to_string()]);
    }
    t
}

/// Render Table III (questions posed to application specialists).
pub fn table3() -> TextTable {
    let mut t = TextTable::new(
        "Table III: Questions posed to application specialists",
        &["Question Number", "Question"],
    );
    for (i, q) in QUESTIONS.iter().enumerate() {
        t.row(vec![(i + 1).to_string(), q.to_string()]);
    }
    t
}

/// Render Table IV (summary of responses).
pub fn table4() -> TextTable {
    let mut t = TextTable::new(
        "Table IV: Summary of responses",
        &["Application", "1", "2", "3", "4", "5", "6", "7", "8"],
    );
    let yn = |v: Option<bool>| -> String {
        match v {
            Some(true) => "Y".into(),
            Some(false) => "N".into(),
            None => "-".into(),
        }
    };
    for r in registry() {
        let a = &r.answers;
        t.row(vec![
            r.name.to_string(),
            yn(a.has_fom),
            yn(a.measurable_online),
            yn(a.relates_to_science),
            yn(a.predictable_time),
            yn(a.iterations_known),
            yn(a.uniform_iterations),
            yn(a.phased),
            a.bound.to_string(),
        ]);
    }
    t
}

/// Render Table V (categorization and online performance metrics).
pub fn table5() -> TextTable {
    let mut t = TextTable::new(
        "Table V: Categorizing applications and defining online performance",
        &["Application", "Category", "Online performance Metric"],
    );
    for r in registry() {
        let cats = r
            .categories
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let metric = r
            .metric
            .as_ref()
            .map(|m| m.name.to_string())
            .unwrap_or_else(|| "N/A".to_string());
        t.row(vec![r.name.to_string(), cats, metric]);
    }
    t
}

/// All four tables, rendered in order.
pub fn tables() -> Vec<TextTable> {
    vec![table2(), table3(), table4(), table5()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use progress::taxonomy::Category;

    #[test]
    fn all_tables_cover_all_nine_applications() {
        for t in [table2(), table4(), table5()] {
            assert_eq!(t.len(), 9);
        }
        assert_eq!(table3().len(), 8);
    }

    #[test]
    fn table5_matches_paper_assignments() {
        let rendered = table5().render();
        assert!(rendered.contains("CANDLE") && rendered.contains("1/2"));
        assert!(
            rendered.contains("Blocks per second".to_lowercase().as_str())
                || rendered.contains("blocks per second")
        );
        // Category-3 apps show N/A.
        for line in rendered.lines() {
            if line.starts_with("URBAN") || line.starts_with("HACC") {
                assert!(line.contains("N/A"), "{line}");
            }
        }
    }

    #[test]
    fn derived_categories_agree_with_table_v_for_every_app() {
        for r in registry() {
            let derived = r.answers.derive_category();
            assert!(
                r.categories.contains(&derived),
                "{}: {:?} vs {:?}",
                r.name,
                derived,
                r.categories
            );
        }
        // Spot checks against the paper.
        let amg = progress::registry::lookup("AMG").unwrap();
        assert_eq!(amg.answers.derive_category(), Category::Two);
        let hacc = progress::registry::lookup("HACC").unwrap();
        assert_eq!(hacc.answers.derive_category(), Category::Three);
    }
}
