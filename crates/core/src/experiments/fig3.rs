//! **Fig. 3** — Impact of dynamic power-capping schemes on progress.
//!
//! Applies the three dynamic schemes (linear decrease, step function,
//! jagged edge) to LAMMPS, QMCPACK (DMC) and OpenMC (active), recording
//! the cap trace and the 1 Hz progress series. The paper's observations:
//!
//! 1. "The online performance of the application follows the power
//!    capping function being applied" — regardless of application or
//!    scheme. Quantified here as the Pearson correlation between the cap
//!    trace (uncapped filled with the uncapped power draw) and the
//!    progress series.
//! 2. OpenMC's progress "is occasionally reported as zero" — an artefact
//!    of coarse batch reporting against the 1 s monitoring window.

use progress::series::TimeSeries;
use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig, ScheduleSpec};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length per (scheme, app) cell.
    pub duration: Nanos,
    /// Low cap (the bottom of every scheme), W.
    pub low_w: f64,
    /// High cap for the jagged scheme, W.
    pub high_w: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            duration: 60 * SEC,
            low_w: 60.0,
            high_w: 150.0,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        // Coarse (batch-level) reporters need teeth long enough to carry a
        // rate trend (~20 reports per tooth), so quick mode keeps the full
        // 60 s duration and economizes elsewhere.
        Self {
            duration: 60 * SEC,
            low_w: 60.0,
            high_w: 150.0,
        }
    }
}

/// The three schemes of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Linearly decreasing cap.
    Linear,
    /// Step-function cap.
    Step,
    /// Jagged-edge (sawtooth) cap.
    Jagged,
}

impl Scheme {
    /// All three, in the paper's order.
    pub fn all() -> [Scheme; 3] {
        [Scheme::Linear, Scheme::Step, Scheme::Jagged]
    }

    fn spec(self, cfg: &Config) -> ScheduleSpec {
        match self {
            Scheme::Linear => ScheduleSpec::LinearDecay {
                uncapped_for: cfg.duration / 6,
                from_w: cfg.high_w,
                to_w: cfg.low_w,
                ramp: cfg.duration * 2 / 3,
            },
            Scheme::Step => ScheduleSpec::Step {
                low_w: cfg.low_w,
                period: cfg.duration / 3,
            },
            Scheme::Jagged => ScheduleSpec::Jagged {
                high_w: cfg.high_w,
                low_w: cfg.low_w,
                decay: cfg.duration / 3,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Linear => "linear-decrease",
            Scheme::Step => "step-function",
            Scheme::Jagged => "jagged-edge",
        }
    }
}

/// One (scheme, application) cell of the figure.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scheme applied.
    pub scheme: &'static str,
    /// Application name.
    pub app: &'static str,
    /// 1 Hz progress series.
    pub progress: TimeSeries,
    /// Cap trace sampled at 1 Hz (uncapped = NaN).
    pub cap: TimeSeries,
    /// Pearson correlation between progress and the cap trace (uncapped
    /// samples filled with the maximum cap level).
    pub tracking_corr: f64,
    /// Zero-valued progress windows (the OpenMC artefact).
    pub zero_windows: usize,
}

/// The full grid.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// One cell per (scheme, app).
    pub cells: Vec<Cell>,
}

/// Pearson correlation between two equal-length series, ignoring the
/// leading warm-up window and any NaNs.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(&a, &b)| (a, b))
        .collect();
    let n = pairs.len() as f64;
    if n < 3.0 {
        return 0.0;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in pairs {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

fn cell(scheme: Scheme, app: AppId, name: &'static str, cfg: &Config) -> Cell {
    let a = run_app(&RunConfig::new(app, cfg.duration).with_schedule(scheme.spec(cfg)));
    let progress = a.progress[0].clone();
    let cap = a.telemetry.cap.clone();
    // Align: both are 1 Hz; fill uncapped samples with the high level.
    // Coarse (batch-level) reporters alias against the 1 s window — the
    // zero/double readings the paper shows — so correlate on 3 s buckets,
    // which is the finest timescale at which a ~1 report/s source carries
    // rate information. Batch reporters also respond to a cap change only
    // at the *next* report; take the best correlation over a 1-bucket lag.
    let cap_filled: Vec<f64> = cap
        .v
        .iter()
        .map(|&c| if c.is_nan() { cfg.high_w } else { c })
        .collect();
    let bucket = |v: &[f64]| -> Vec<f64> {
        v.chunks(3)
            .filter(|c| c.len() == 3)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    };
    let n = cap_filled.len().min(progress.v.len());
    let cap_b = bucket(&cap_filled[..n]);
    let prog_b = bucket(&progress.v[..n]);
    let corr = (0..=1usize)
        .map(|lag| {
            if prog_b.len() <= lag + 2 {
                return 0.0;
            }
            let shifted = &prog_b[lag..];
            let m = cap_b.len().min(shifted.len());
            pearson(&cap_b[..m], &shifted[..m])
        })
        .fold(f64::NEG_INFINITY, f64::max);
    Cell {
        scheme: scheme.name(),
        app: name,
        zero_windows: progress.zero_count(),
        progress,
        cap,
        tracking_corr: corr,
    }
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Fig3 {
    let apps = [
        (AppId::Lammps, "LAMMPS"),
        (AppId::QmcpackDmc, "QMCPACK (DMC)"),
        (AppId::OpenmcActive, "OpenMC (Active)"),
    ];
    let mut jobs = Vec::new();
    for scheme in Scheme::all() {
        for (app, name) in apps {
            jobs.push((scheme, app, name));
        }
    }
    let cfg2 = cfg.clone();
    let cells = par_map(jobs, move |(scheme, app, name)| {
        cell(scheme, app, name, &cfg2)
    });
    Fig3 { cells }
}

impl Fig3 {
    /// Summary table: tracking correlation per cell.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 3: progress follows the dynamic power-capping function",
            &[
                "Scheme",
                "Application",
                "corr(progress, cap)",
                "zero windows",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.scheme.to_string(),
                c.app.to_string(),
                f(c.tracking_corr, 3),
                c.zero_windows.to_string(),
            ]);
        }
        t
    }

    /// Find a cell.
    pub fn cell(&self, scheme: &str, app: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.app.starts_with(app))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_follows_every_scheme_for_every_app() {
        let r = run(&Config::quick());
        assert_eq!(r.cells.len(), 9);
        for c in &r.cells {
            assert!(
                c.tracking_corr > 0.5,
                "{} / {}: corr {:.2} — progress must follow the cap",
                c.scheme,
                c.app,
                c.tracking_corr
            );
        }
    }

    #[test]
    fn openmc_reports_occasional_zero_progress() {
        let r = run(&Config::quick());
        let openmc_zeros: usize = r
            .cells
            .iter()
            .filter(|c| c.app.starts_with("OpenMC"))
            .map(|c| c.zero_windows)
            .sum();
        assert!(
            openmc_zeros > 0,
            "OpenMC should show the zero-reporting artefact"
        );
        // LAMMPS reports ~27×/s and should never alias to zero.
        let lammps_zeros: usize = r
            .cells
            .iter()
            .filter(|c| c.app == "LAMMPS")
            .map(|c| c.zero_windows)
            .sum();
        assert_eq!(lammps_zeros, 0, "LAMMPS must not report zero windows");
    }
}
