//! One module per paper table/figure, plus ablations.
//!
//! Each module follows the same shape: a `Config` (with `Default` at the
//! paper's scale and `quick()` for tests/benches), a `run(&Config)`
//! producing a typed result, and a `table()`/`tables()` rendering for the
//! `repro` binary and EXPERIMENTS.md.

pub mod ablations;
pub mod backends;
pub mod candle_ext;
pub mod cluster;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod hierarchy;
pub mod loadgen;
pub mod sched;
pub mod table1;
pub mod table6;
pub mod tables2to5;
