//! **Sched** — multi-tenant eco-mode batch scheduling under a machine
//! power envelope.
//!
//! The paper's progress model answers "how much slower at what cap?";
//! this experiment asks what that buys a *site*: a 64-node machine whose
//! breaker supports far less than every node at the full cap, a seeded
//! queue of heterogeneous tenant jobs (some declaring eco-mode slack —
//! "20 % longer is fine"), and a power-aware admission controller that
//! only starts a job while the predicted machine draw fits the envelope.
//! The same trace runs under each [`SchedPolicy`]:
//!
//! - **fcfs-backfill** — power-aware EASY backfill, every job at the
//!   full cap: what a power-unaware site does with the same breaker;
//! - **eco-backfill** — slack-declaring jobs are admitted at the lowest
//!   cap their declaration tolerates (the predictor's inverse query), so
//!   their envelope charge shrinks and more tenants fit at once;
//! - **fair-share** — eco-aware, queue ordered by least-served tenant.
//!
//! The summary compares makespan, energy (busy + idle), bounded
//! slowdown, per-tenant Jain fairness, and the minimum envelope slack
//! the admission controller ever left (non-negative iff Σ admitted
//! power ≤ envelope held at every event — the invariant the proptests
//! hammer). The headline, after Angelelli et al.'s eco-mode queues:
//! honouring slack declarations finishes the same queue *sooner* on
//! *less* energy, because capped jobs pack better under the breaker and
//! run at a more efficient operating point.

use sched::{simulate, SchedConfig, SchedPolicy, ScheduleOutcome};

use crate::report::{f, TextTable};
use crate::sweep::par_map;

/// Experiment configuration: a thin wrapper over [`SchedConfig`] so the
/// `repro` CLI can override the trace seed.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Machine, trace, and predictor knobs.
    pub sched: SchedConfig,
}

impl Default for Config {
    /// The paper-scale run: 64 jobs from 4 tenants onto 64 nodes under a
    /// 4.8 kW envelope (~58 % of every-node-at-full-cap).
    fn default() -> Self {
        Self {
            sched: SchedConfig::default(),
        }
    }
}

impl Config {
    /// Reduced-scale config for tests: a third of the queue, same
    /// machine, so admission still binds on power.
    pub fn quick() -> Self {
        let mut cfg = Self::default();
        cfg.sched.trace.jobs = 24;
        cfg
    }

    /// Override the trace seed (the `repro --seed` hook).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sched.trace.seed = seed;
        self
    }

    /// The policies under comparison, in table order.
    pub fn policies(&self) -> [SchedPolicy; 3] {
        SchedPolicy::ALL
    }
}

/// One policy's full schedule.
#[derive(Debug, Clone)]
pub struct PolicyCell {
    /// Policy display name.
    pub policy: &'static str,
    /// Everything the schedule produced.
    pub outcome: ScheduleOutcome,
}

/// The experiment result: one cell per policy.
#[derive(Debug, Clone)]
pub struct Sched {
    /// One cell per policy, in [`Config::policies`] order.
    pub cells: Vec<PolicyCell>,
}

/// Run the experiment: the same trace under each policy (in parallel;
/// each simulation is single-threaded and deterministic).
pub fn run(cfg: &Config) -> Result<Sched, cluster::error::ConfigError> {
    let jobs: Vec<SchedPolicy> = cfg.policies().to_vec();
    let sched_cfg = cfg.sched;
    let cells = par_map(jobs, move |policy| {
        Ok(PolicyCell {
            policy: policy.name(),
            outcome: simulate(&sched_cfg, policy)?,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(Sched { cells })
}

impl Sched {
    /// Find a policy's cell by display name.
    pub fn cell(&self, policy: &str) -> Option<&PolicyCell> {
        self.cells.iter().find(|c| c.policy == policy)
    }

    /// Policy comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Sched: eco-mode batch scheduling under a 4.8 kW envelope (64 jobs, 4 tenants, 64 nodes)",
            &[
                "Policy",
                "makespan (s)",
                "job energy (MJ)",
                "idle energy (MJ)",
                "total (MJ)",
                "mean bsld",
                "max bsld",
                "Jain fairness",
                "utilization",
                "min slack (W)",
                "eco shrunk",
            ],
        );
        for c in &self.cells {
            let o = &c.outcome;
            let full_cap = o
                .jobs
                .iter()
                .map(|j| j.cap_w)
                .fold(f64::NEG_INFINITY, f64::max);
            let shrunk = o
                .jobs
                .iter()
                .filter(|j| j.eco && j.cap_w < full_cap - 1e-9)
                .count();
            t.row(vec![
                c.policy.to_string(),
                f(o.makespan_s, 1),
                f(o.job_energy_j / 1e6, 3),
                f(o.idle_energy_j / 1e6, 3),
                f(o.total_energy_j() / 1e6, 3),
                f(o.mean_bsld, 2),
                f(o.max_bsld, 2),
                f(o.jain_fairness, 3),
                f(o.utilization, 3),
                f(o.min_envelope_slack_w, 1),
                shrunk.to_string(),
            ]);
        }
        t
    }

    /// Per-tenant service table: one row per (policy, tenant).
    pub fn tenant_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Sched: per-tenant service under each policy",
            &[
                "Policy",
                "tenant",
                "jobs",
                "mean wait (s)",
                "mean bsld",
                "node-hours",
                "energy (MJ)",
            ],
        );
        for c in &self.cells {
            for ten in &c.outcome.tenants {
                t.row(vec![
                    c.policy.to_string(),
                    ten.tenant.to_string(),
                    ten.jobs.to_string(),
                    f(ten.mean_wait_s, 1),
                    f(ten.mean_bsld, 2),
                    f(ten.node_seconds / 3600.0, 2),
                    f(ten.energy_j / 1e6, 3),
                ]);
            }
        }
        t
    }

    /// Per-job schedule table: one row per (policy, job) — the raw
    /// material for replaying or plotting a schedule.
    pub fn job_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Sched: per-job schedule under each policy",
            &[
                "Policy",
                "job",
                "tenant",
                "class",
                "nodes",
                "eco",
                "cap (W)",
                "power (W)",
                "arrival (s)",
                "start (s)",
                "end (s)",
                "wait (s)",
                "bsld",
            ],
        );
        for c in &self.cells {
            for j in &c.outcome.jobs {
                t.row(vec![
                    c.policy.to_string(),
                    j.id.to_string(),
                    j.tenant.to_string(),
                    j.class.name().to_string(),
                    j.nodes.to_string(),
                    if j.eco { "yes" } else { "no" }.to_string(),
                    f(j.cap_w, 1),
                    f(j.power_w, 1),
                    f(j.arrival_s, 1),
                    f(j.start_s, 1),
                    f(j.end_s, 1),
                    f(j.wait_s(), 1),
                    f(j.bounded_slowdown(), 2),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eco_backfill_beats_the_baseline_on_makespan_and_energy() {
        let r = run(&Config::quick()).unwrap();
        assert_eq!(r.cells.len(), 3);
        let fcfs = r.cell("fcfs-backfill").expect("baseline ran");
        let eco = r.cell("eco-backfill").expect("eco ran");
        assert!(
            eco.outcome.makespan_s < fcfs.outcome.makespan_s,
            "eco {:.1} s vs fcfs {:.1} s",
            eco.outcome.makespan_s,
            fcfs.outcome.makespan_s
        );
        assert!(
            eco.outcome.total_energy_j() < fcfs.outcome.total_energy_j(),
            "eco {:.0} J vs fcfs {:.0} J",
            eco.outcome.total_energy_j(),
            fcfs.outcome.total_energy_j()
        );
    }

    #[test]
    fn every_policy_keeps_the_envelope_invariant() {
        let r = run(&Config::quick()).unwrap();
        for c in &r.cells {
            assert!(
                c.outcome.min_envelope_slack_w >= -1e-6,
                "{}: envelope overshot by {} W",
                c.policy,
                -c.outcome.min_envelope_slack_w
            );
            assert_eq!(c.outcome.jobs.len(), Config::quick().sched.trace.jobs);
        }
    }

    #[test]
    fn seed_override_changes_the_schedule() {
        let a = run(&Config::quick()).unwrap();
        let b = run(&Config::quick().with_seed(99)).unwrap();
        assert_ne!(
            a.cell("eco-backfill").unwrap().outcome.makespan_s,
            b.cell("eco-backfill").unwrap().outcome.makespan_s
        );
        // Same seed replays bit-identically through the harness too.
        let c = run(&Config::quick()).unwrap();
        assert_eq!(
            a.cell("eco-backfill").unwrap().outcome,
            c.cell("eco-backfill").unwrap().outcome
        );
    }

    #[test]
    fn tables_cover_every_policy_tenant_and_job() {
        let cfg = Config::quick();
        let r = run(&cfg).unwrap();
        assert_eq!(r.table().len(), 3);
        assert_eq!(r.tenant_table().len(), 3 * cfg.sched.trace.tenants);
        assert_eq!(r.job_table().len(), 3 * cfg.sched.trace.jobs);
    }
}
