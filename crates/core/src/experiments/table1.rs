//! **Table I** — Correlation between MIPS and online performance.
//!
//! Runs the paper's Listing-1 microbenchmark (24 ranks, 5 iterations) in
//! both variants and reports the two definitions of online performance
//! next to MIPS. The paper's point: both variants run at ~1 iteration/s
//! (Definition 1) while MIPS differs by ~20× because the unequal variant's
//! barrier busy-waiting retires instructions furiously; MIPS therefore
//! tells us nothing about online performance.
//!
//! Note on absolute work-unit numbers: with 24 ranks sleeping up to 1 s
//! per 1 s iteration, the total work is 24·10⁶ units/iteration (equal) vs
//! 12.5·10⁶ (unequal) — a 1.92:1 ratio. The paper's table prints
//! 4.8·10⁶ vs 2.4·10⁶ per second (the same 2:1 ratio at 1/5 the absolute
//! scale, consistent with averaging over the 5-iteration run); the *ratio*
//! and the MIPS inversion are the reproduced result.

use proxyapps::apps::listing1;
use proxyapps::catalog::AppId;
use simnode::time::{Nanos, SEC};

use crate::report::{f, TextTable};
use crate::runner::{run_app, RunConfig};
use crate::sweep::par_map;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// MPI ranks (paper: 24).
    pub ranks: usize,
    /// Wall-clock budget per variant (the benchmark itself stops after 5
    /// iterations ≈ 5 s).
    pub budget: Nanos,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            ranks: 24,
            budget: 10 * SEC,
        }
    }
}

impl Config {
    /// Reduced-scale config for tests.
    pub fn quick() -> Self {
        Self::default()
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// `do_work` routine name.
    pub routine: &'static str,
    /// Ranks.
    pub processes: usize,
    /// Definition 1: iterations per second.
    pub def1_iters_per_s: f64,
    /// Definition 2: work units per second.
    pub def2_work_per_s: f64,
    /// MIPS over the run.
    pub mips: f64,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Equal-work and unequal-work rows.
    pub rows: Vec<Row>,
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Table1 {
    let variants = vec![
        (AppId::Listing1Equal, "do_equal_work", true),
        (AppId::Listing1Unequal, "do_unequal_work", false),
    ];
    let ranks = cfg.ranks;
    let budget = cfg.budget;
    let rows = par_map(variants, move |(app, routine, _equal)| {
        let mut rc = RunConfig::new(app, budget);
        rc.ranks = ranks;
        let a = run_app(&rc);
        assert!(a.record.all_done, "Listing-1 must run to completion");
        // Definitions over the whole run, like the paper's end-of-run
        // averages. Each window rate × the 1 s window length = the window's
        // work, so summing rates over 1 s windows gives run totals.
        let total_iters: f64 = a.progress[0].v.iter().sum::<f64>();
        let total_work: f64 = a.progress[1].v.iter().sum::<f64>();
        Row {
            routine,
            processes: ranks,
            def1_iters_per_s: total_iters / a.duration_s,
            def2_work_per_s: total_work / a.duration_s,
            mips: a.mips(),
        }
    });
    Table1 { rows }
}

impl Table1 {
    /// Render like the paper's Table I.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table I: Correlation between MIPS and online performance",
            &[
                "No. of MPI Processes",
                "do_work Routine",
                "Def 1 (iterations/s)",
                "Def 2 (work units/s)",
                "MIPS",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.processes.to_string(),
                r.routine.to_string(),
                f(r.def1_iters_per_s, 3),
                f(r.def2_work_per_s, 0),
                f(r.mips, 1),
            ]);
        }
        t
    }

    /// The equal-work row.
    pub fn equal(&self) -> &Row {
        &self.rows[0]
    }

    /// The unequal-work row.
    pub fn unequal(&self) -> &Row {
        &self.rows[1]
    }
}

/// Expected per-iteration work units (exposed for tests/EXPERIMENTS.md).
pub fn expected_work_ratio(ranks: usize) -> f64 {
    listing1::work_per_iteration(ranks, true) / listing1::work_per_iteration(ranks, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_papers_inversion() {
        let t = run(&Config::quick());
        let eq = t.equal();
        let uneq = t.unequal();

        // Definition 1: ~1 iteration/s for both (paper: 0.998).
        assert!(
            (0.90..1.01).contains(&eq.def1_iters_per_s),
            "equal Def1 = {}",
            eq.def1_iters_per_s
        );
        assert!(
            (eq.def1_iters_per_s - uneq.def1_iters_per_s).abs() < 0.03,
            "Def1 must match across variants"
        );

        // Definition 2: equal ≈ 2× unequal (paper: 4.8M vs 2.4M).
        let ratio = eq.def2_work_per_s / uneq.def2_work_per_s;
        assert!(
            (ratio - expected_work_ratio(24)).abs() < 0.05,
            "Def2 ratio {ratio:.2}"
        );

        // MIPS inversion: the *less* productive variant has far higher
        // MIPS (paper: 79724 vs 4115 ≈ 19×).
        let mips_ratio = uneq.mips / eq.mips;
        assert!(
            mips_ratio > 8.0,
            "unequal MIPS ({:.0}) should dwarf equal MIPS ({:.0})",
            uneq.mips,
            eq.mips
        );
    }

    #[test]
    fn rendered_table_has_both_rows() {
        let t = run(&Config::quick());
        let rendered = t.table().render();
        assert!(rendered.contains("do_equal_work"));
        assert!(rendered.contains("do_unequal_work"));
    }
}
