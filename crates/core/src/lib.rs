//! # powerprog-core — the experiment harness
//!
//! Regenerates every table and figure of Ramesh et al. (IPDPS-W 2019) on
//! the simulated node:
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Table I (MIPS vs online performance) | [`experiments::table1`] |
//! | Tables II–V (descriptions, interviews, categories, metrics) | [`experiments::tables2to5`] |
//! | Table VI (β and MPO characterization) | [`experiments::table6`] |
//! | Fig. 1 (characterizing online performance) | [`experiments::fig1`] |
//! | Fig. 2 (RAPL application-aware frequencies) | [`experiments::fig2`] |
//! | Fig. 3 (dynamic capping schemes vs progress) | [`experiments::fig3`] |
//! | Fig. 4 (measured vs predicted Δprogress) | [`experiments::fig4`] |
//! | Fig. 5 (STREAM: RAPL vs DVFS) | [`experiments::fig5`] |
//!
//! Plus the ablations DESIGN.md commits to: α sensitivity/fitting, lossy
//! vs lossless monitoring, and the composition/policy extensions.
//!
//! The [`runner`] module owns single simulation runs; [`sweep`] fans
//! parameter sweeps out over rayon; [`report`] renders text tables and
//! CSV. Every experiment has a `quick()` configuration used by tests and
//! a `Default` configuration matching the paper's scale.

pub mod experiments;
pub mod jobsim;
pub mod report;
pub mod runner;
pub mod sweep;

pub use runner::{run_app, RunArtifacts, RunConfig, ScheduleSpec};
