//! Simulation-backed nodes for the job-level power manager.
//!
//! Wraps a [`Driver`] + monitoring so `nrm::job::JobPowerManager` can step
//! a fleet of simulated nodes epoch by epoch. Node *variability* — the
//! reason the paper (via Rountree et al.) wants application-aware
//! distribution — is expressed through per-node [`NodeConfig`] deltas
//! (e.g. a leakier chip draws more watts for the same frequency).

use nrm::job::{ManagedNode, NodeStatus};
use progress::aggregator::ProgressAggregator;
use progress::bus::{BusConfig, ProgressBus};
use proxyapps::catalog::{build, AppId};
use proxyapps::runtime::Driver;
use simnode::config::NodeConfig;
use simnode::time::{Nanos, SEC};

/// One simulated node under job management.
pub struct SimNode {
    driver: Driver,
    agg: ProgressAggregator,
    baseline_rate: f64,
    epoch: Nanos,
    last_work: f64,
    last_energy: f64,
}

impl SimNode {
    /// Build a node running `app` on hardware `cfg`, with a measured
    /// uncapped `baseline_rate` (app units/s) for normalization.
    pub fn new(cfg: NodeConfig, app: AppId, seed: u64, baseline_rate: f64) -> Self {
        assert!(baseline_rate > 0.0);
        let bus = ProgressBus::new();
        let instance = build(app, &cfg, cfg.cores, seed);
        let node = simnode::node::Node::new(cfg);
        let channels = instance.channels();
        let driver = Driver::new(node, instance.programs, &bus, channels);
        let source = driver.channel_sources()[0];
        let agg = ProgressAggregator::new(bus.subscribe(BusConfig::lossless()), SEC, Some(source));
        Self {
            driver,
            agg,
            baseline_rate,
            epoch: SEC,
            last_work: 0.0,
            last_energy: 0.0,
        }
    }

    /// Use a longer epoch than the default 1 s (coarse reporters need a
    /// few reporting periods per epoch for a stable rate).
    pub fn with_epoch(mut self, epoch: Nanos) -> Self {
        assert!(epoch >= SEC);
        self.epoch = epoch;
        self
    }

    /// Measure an uncapped baseline rate for (cfg, app): helper for
    /// constructing fleets.
    pub fn measure_baseline(cfg: &NodeConfig, app: AppId, seed: u64, duration: Nanos) -> f64 {
        let mut rc = crate::runner::RunConfig::new(app, duration);
        rc.node = cfg.clone();
        rc.ranks = cfg.cores;
        rc.seed = seed;
        crate::runner::run_app(&rc).steady_rate()
    }
}

impl ManagedNode for SimNode {
    fn run_epoch(&mut self, cap_w: Option<f64>) -> NodeStatus {
        // Best-effort: a failed cap write leaves the previous cap in force;
        // the manager observes the resulting power and compensates at the
        // next epoch rather than crashing the fleet.
        let _ = self.driver.node_mut().set_package_cap(cap_w);
        let until = self.driver.node().now() + self.epoch;
        self.driver.run(until, &mut []);
        let now = self.driver.node().now();
        self.agg.poll(now);

        let total_work: f64 = self.agg.windows().iter().map(|w| w.sum).sum();
        let work = total_work - self.last_work;
        self.last_work = total_work;

        let total_energy = self.driver.node().total_energy();
        let energy = total_energy - self.last_energy;
        self.last_energy = total_energy;

        let epoch_s = self.epoch as f64 / 1e9;
        NodeStatus {
            rate: work / epoch_s,
            baseline_rate: self.baseline_rate,
            power_w: energy / epoch_s,
        }
    }

    fn baseline_rate(&self) -> f64 {
        self.baseline_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrm::job::{settled_job_progress, JobPolicy, JobPowerManager};

    /// A leaky chip: +18% switched capacitance draws more power at every
    /// operating point (manufacturing variability).
    fn leaky(cfg: &NodeConfig) -> NodeConfig {
        let mut c = cfg.clone();
        c.core_power.c_dyn *= 1.18;
        c
    }

    fn fleet(epoch: Nanos) -> Vec<SimNode> {
        let normal = NodeConfig::default();
        let bad = leaky(&normal);
        let baseline = SimNode::measure_baseline(&normal, AppId::Lammps, 1, 5 * SEC);
        let baseline_bad = SimNode::measure_baseline(&bad, AppId::Lammps, 1, 5 * SEC);
        vec![
            SimNode::new(normal.clone(), AppId::Lammps, 1, baseline).with_epoch(epoch),
            SimNode::new(normal.clone(), AppId::Lammps, 2, baseline).with_epoch(epoch),
            SimNode::new(bad, AppId::Lammps, 3, baseline_bad).with_epoch(epoch),
        ]
    }

    fn run_policy(policy: JobPolicy) -> f64 {
        let mut nodes = fleet(2 * SEC);
        let mut refs: Vec<&mut dyn ManagedNode> = nodes
            .iter_mut()
            .map(|n| n as &mut dyn ManagedNode)
            .collect();
        // 270 W for three nodes that want ~450 W uncapped.
        let mgr = JobPowerManager::new(270.0, policy);
        let trace = mgr.run(&mut refs, 8);
        settled_job_progress(&trace)
    }

    #[test]
    fn progress_aware_distribution_helps_a_heterogeneous_job() {
        let equal = run_policy(JobPolicy::EqualSplit);
        let aware = run_policy(JobPolicy::ProgressAware { gain: 1.5 });
        assert!(
            aware > equal,
            "progress-aware ({aware:.3}) must beat equal split ({equal:.3})"
        );
        assert!(equal > 0.3 && aware < 1.0, "sanity: {equal:.3}, {aware:.3}");
    }

    #[test]
    fn epochs_observe_plausible_power() {
        let mut nodes = fleet(2 * SEC);
        let status = nodes[0].run_epoch(Some(90.0));
        assert!(
            (30.0..110.0).contains(&status.power_w),
            "{}",
            status.power_w
        );
        assert!(status.rate > 0.0);
    }
}
