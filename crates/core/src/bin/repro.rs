//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [all|table1|tables2to5|table6|fig1|fig2|fig3|fig4|fig5|candle|ablations|faults|backends|cluster|sched|loadgen]
//!       [--quick] [--out DIR] [--budget W] [--seed N] [--nodes N]
//!       [--shards N] [--clients M]
//!
//! `sched` schedules a seeded multi-tenant batch queue under a machine
//! power envelope and compares the eco-mode-aware admission policies;
//! `--seed N` reseeds its arrival trace.
//!
//! `loadgen` (not part of `all`) stress-drives the `arbiterd` daemon
//! with thousands of simulated telemetry producers across clean,
//! overload, hostile-wire, crash/recovery, and sharded scenarios;
//! `--seed N` reseeds the whole run (telemetry, fault schedules,
//! backoff jitter), which is how the CI soak sweeps fresh chaos every
//! iteration. `--shards N` sets the sharded scenario's daemon count and
//! `--clients M` rescales the cohort; a zero for either is rejected as
//! a configuration error (exit 2), not a panic.
//! ```
//!
//! `--budget W` overrides the machine-level power budget of the cluster
//! artefacts; an infeasible value is reported as a configuration error
//! (which field, which constraint) instead of a panic backtrace.
//!
//! `--nodes N` rescales the cluster artefacts to an N-node machine
//! (budget density held at the default 65 W/node; the hierarchical
//! variants add racks of the default width, so N must be a multiple of
//! it). This is the large-sweep knob: the scale-smoke CI tier runs
//! `repro cluster --quick --nodes 1024` and diffs the CSVs bit for bit.
//!
//! Prints each artefact as an aligned text table; with `--out DIR` also
//! writes one CSV per artefact (plus raw series for the figures).

use std::fs;
use std::path::PathBuf;

use powerprog_core::experiments::{
    ablations, backends, candle_ext, cluster, faults, fig1, fig2, fig3, fig4, fig5, hierarchy,
    loadgen, sched, table1, table6, tables2to5,
};
use powerprog_core::report::TextTable;

struct Opts {
    what: Vec<String>,
    quick: bool,
    out: Option<PathBuf>,
    budget_w: Option<f64>,
    seed: Option<u64>,
    nodes: Option<usize>,
    shards: Option<usize>,
    clients: Option<usize>,
}

fn parse_args() -> Opts {
    let mut what = Vec::new();
    let mut quick = false;
    let mut out = None;
    let mut budget_w = None;
    let mut seed = None;
    let mut nodes = None;
    let mut shards = None;
    let mut clients = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                });
                out = Some(PathBuf::from(dir));
            }
            "--budget" => {
                let w = args.next().and_then(|v| v.parse::<f64>().ok());
                budget_w = Some(w.unwrap_or_else(|| {
                    eprintln!("--budget requires a wattage");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                let s = args.next().and_then(|v| v.parse::<u64>().ok());
                seed = Some(s.unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                }));
            }
            "--nodes" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok());
                nodes = Some(n.filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--nodes requires a positive node count");
                    std::process::exit(2);
                }));
            }
            // Zero is parsed, not rejected: `loadgen` maps it to a
            // ConfigError naming the field (still exit code 2).
            "--shards" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok());
                shards = Some(n.unwrap_or_else(|| {
                    eprintln!("--shards requires a shard count");
                    std::process::exit(2);
                }));
            }
            "--clients" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok());
                clients = Some(n.unwrap_or_else(|| {
                    eprintln!("--clients requires a producer count");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [all|table1|tables2to5|table6|fig1|fig2|fig3|fig4|fig5|candle|ablations|faults|backends|cluster|sched|loadgen]... [--quick] [--out DIR] [--budget W] [--seed N] [--nodes N] [--shards N] [--clients M]"
                );
                std::process::exit(0);
            }
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    Opts {
        what,
        quick,
        out,
        budget_w,
        seed,
        nodes,
        shards,
        clients,
    }
}

/// Reject an invalid cluster configuration with context (which field,
/// which constraint) instead of a panic backtrace from deep inside the
/// run. Exit code 2 marks an operator error, not a simulator bug.
fn check_config(what: &str, cfg: &::cluster::ClusterConfig) {
    if let Err(e) = cfg.validate() {
        eprintln!("repro {what}: {e}");
        std::process::exit(2);
    }
}

fn emit(t: &TextTable, out: &Option<PathBuf>, name: &str) {
    println!("{}", t.render());
    if let Some(dir) = out {
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, t.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
    }
}

fn write_series(out: &Option<PathBuf>, name: &str, s: &progress::series::TimeSeries, v: &str) {
    if let Some(dir) = out {
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, s.to_csv("t_s", v)).expect("write series");
    }
}

fn main() {
    let opts = parse_args();
    if let Some(dir) = &opts.out {
        fs::create_dir_all(dir).expect("create output dir");
    }
    let wants = |k: &str| opts.what.iter().any(|w| w == k || w == "all");
    let t0 = std::time::Instant::now();

    if wants("table1") {
        let cfg = table1::Config::default();
        emit(&table1::run(&cfg).table(), &opts.out, "table1");
    }
    if wants("tables2to5") {
        for (i, t) in tables2to5::tables().iter().enumerate() {
            emit(t, &opts.out, &format!("table{}", i + 2));
        }
    }
    if wants("table6") {
        let cfg = if opts.quick {
            table6::Config::quick()
        } else {
            table6::Config::default()
        };
        emit(&table6::run(&cfg).table(), &opts.out, "table6");
    }
    if wants("fig1") {
        let cfg = if opts.quick {
            fig1::Config::quick()
        } else {
            fig1::Config::default()
        };
        let r = fig1::run(&cfg);
        emit(&r.table(), &opts.out, "fig1_summary");
        for p in [&r.lammps, &r.amg, &r.qmcpack] {
            println!("Fig. 1 sketch — {} progress rate:", p.app);
            println!("{}", powerprog_core::report::ascii_chart(&p.series, 72, 10));
        }
        write_series(
            &opts.out,
            "fig1_lammps",
            &r.lammps.series,
            "katom_steps_per_s",
        );
        write_series(&opts.out, "fig1_amg", &r.amg.series, "iters_per_s");
        write_series(&opts.out, "fig1_qmcpack", &r.qmcpack.series, "blocks_per_s");
    }
    if wants("fig2") {
        let cfg = if opts.quick {
            fig2::Config::quick()
        } else {
            fig2::Config::default()
        };
        emit(&fig2::run(&cfg).table(), &opts.out, "fig2");
    }
    if wants("fig3") {
        let cfg = if opts.quick {
            fig3::Config::quick()
        } else {
            fig3::Config::default()
        };
        let r = fig3::run(&cfg);
        emit(&r.table(), &opts.out, "fig3_summary");
        if let Some(c) = r.cell("jagged-edge", "LAMMPS") {
            println!("Fig. 3 sketch — jagged-edge cap vs LAMMPS progress:");
            println!("{}", powerprog_core::report::ascii_chart(&c.cap, 72, 8));
            println!(
                "{}",
                powerprog_core::report::ascii_chart(&c.progress, 72, 8)
            );
        }
        if opts.out.is_some() {
            for c in &r.cells {
                let tag = format!(
                    "fig3_{}_{}",
                    c.scheme.replace('-', "_"),
                    c.app.to_lowercase().replace([' ', '(', ')'], "")
                );
                write_series(&opts.out, &format!("{tag}_progress"), &c.progress, "rate");
                write_series(&opts.out, &format!("{tag}_cap"), &c.cap, "cap_w");
            }
        }
    }
    if wants("fig4") {
        let cfg = if opts.quick {
            fig4::Config::quick()
        } else {
            fig4::Config::default()
        };
        emit(&fig4::run(&cfg).table(), &opts.out, "fig4");
    }
    if wants("fig5") {
        let cfg = if opts.quick {
            fig5::Config::quick()
        } else {
            fig5::Config::default()
        };
        emit(&fig5::run(&cfg).table(), &opts.out, "fig5");
    }
    if wants("candle") {
        let cfg = if opts.quick {
            candle_ext::Config::quick()
        } else {
            candle_ext::Config::default()
        };
        emit(&candle_ext::run(&cfg).table(), &opts.out, "candle_ext");
    }
    if wants("faults") {
        let cfg = if opts.quick {
            faults::Config::quick()
        } else {
            faults::Config::default()
        };
        emit(&faults::run(&cfg).table(), &opts.out, "faults");
        let (plain, empty) = faults::purity_check(&cfg);
        println!(
            "fault-free purity: {} (plain {plain:.3} J, empty plan {empty:.3} J)\n",
            if plain.to_bits() == empty.to_bits() {
                "bit-identical"
            } else {
                "MISMATCH"
            }
        );
    }
    if wants("backends") {
        let cfg = if opts.quick {
            backends::Config::quick()
        } else {
            backends::Config::default()
        };
        emit(&backends::run(&cfg).table(), &opts.out, "backends");
    }
    if wants("cluster") {
        let mut cfg = if opts.quick {
            cluster::Config::quick()
        } else {
            cluster::Config::default()
        };
        if let Some(n) = opts.nodes {
            cfg = cfg.with_nodes(n);
        }
        if let Some(w) = opts.budget_w {
            cfg.budget_w = w;
        }
        check_config("cluster", &cfg.cluster_config(cfg.policies()[0]));
        let r = cluster::run(&cfg).unwrap_or_else(|e| {
            eprintln!("repro cluster: {e}");
            std::process::exit(2);
        });
        emit(&r.table(), &opts.out, "cluster_policies");
        emit(&r.budget_trace_table(), &opts.out, "cluster_budget_trace");

        let mut hcfg = if opts.quick {
            hierarchy::Config::quick()
        } else {
            hierarchy::Config::default()
        };
        if let Some(n) = opts.nodes {
            if !n.is_multiple_of(hcfg.nodes_per_rack) {
                eprintln!(
                    "repro cluster: --nodes {n} is not a multiple of the {}-node rack width",
                    hcfg.nodes_per_rack
                );
                std::process::exit(2);
            }
            hcfg = hcfg.with_nodes(n);
        }
        if let Some(w) = opts.budget_w {
            hcfg.budget_w = w;
        }
        for v in hcfg.variants() {
            check_config("cluster", &hcfg.cluster_config(v.policy, v.hierarchy));
        }
        let h = hierarchy::run(&hcfg).unwrap_or_else(|e| {
            eprintln!("repro cluster: {e}");
            std::process::exit(2);
        });
        emit(&h.table(), &opts.out, "cluster_hierarchy");
        emit(
            &h.rack_trace_table(),
            &opts.out,
            "cluster_hierarchy_rack_trace",
        );
        emit(
            &h.node_trace_table(),
            &opts.out,
            "cluster_hierarchy_node_trace",
        );
    }
    if wants("sched") {
        let mut cfg = if opts.quick {
            sched::Config::quick()
        } else {
            sched::Config::default()
        };
        if let Some(s) = opts.seed {
            cfg = cfg.with_seed(s);
        }
        if let Err(e) = cfg.sched.validate() {
            eprintln!("repro sched: {e}");
            std::process::exit(2);
        }
        let r = sched::run(&cfg).unwrap_or_else(|e| {
            eprintln!("repro sched: {e}");
            std::process::exit(2);
        });
        emit(&r.table(), &opts.out, "sched_policies");
        emit(&r.tenant_table(), &opts.out, "sched_tenants");
        emit(&r.job_table(), &opts.out, "sched_jobs");
    }
    // Not a paper artefact, so not part of `all`: run only when asked.
    if opts.what.iter().any(|w| w == "loadgen") {
        let mut cfg = if opts.quick {
            loadgen::Config::quick()
        } else {
            loadgen::Config::default()
        };
        if let Some(s) = opts.seed {
            cfg.seed = s;
        }
        if let Some(n) = opts.shards {
            cfg.shards = n;
        }
        if let Some(m) = opts.clients {
            cfg.clients = m;
        }
        let r = loadgen::run(&cfg).unwrap_or_else(|e| {
            eprintln!("repro loadgen: {e}");
            std::process::exit(2);
        });
        emit(&r.table(), &opts.out, "loadgen");
    }
    if wants("ablations") {
        let cfg = if opts.quick {
            fig4::Config::quick()
        } else {
            fig4::Config::default()
        };
        for (i, t) in ablations::tables(&cfg).iter().enumerate() {
            emit(t, &opts.out, &format!("ablation{}", i + 1));
        }
    }

    eprintln!("done in {:.1} s", t0.elapsed().as_secs_f64());
}
