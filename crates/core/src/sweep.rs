//! Parallel parameter sweeps.
//!
//! Every simulation run is single-threaded and deterministic given its
//! [`crate::RunConfig`], so sweeps (caps × seeds × apps) are
//! embarrassingly parallel: fan out with rayon, collect in input order.

use rayon::prelude::*;

use crate::runner::{run_app, RunArtifacts, RunConfig};

/// Run every config in parallel, preserving input order.
pub fn run_all(configs: &[RunConfig]) -> Vec<RunArtifacts> {
    configs.par_iter().map(run_app).collect()
}

/// Map an arbitrary function over inputs in parallel, preserving order.
/// Thin wrapper so experiment code doesn't import rayon directly.
pub fn par_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync + Send,
{
    inputs.into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxyapps::catalog::AppId;
    use simnode::time::SEC;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_all_is_deterministic_across_parallel_runs() {
        let cfgs: Vec<RunConfig> = (0..2)
            .map(|_| RunConfig::new(AppId::Stream, 3 * SEC))
            .collect();
        let out = run_all(&cfgs);
        assert_eq!(out[0].counters, out[1].counters);
        assert_eq!(out[0].progress[0], out[1].progress[0]);
    }
}
