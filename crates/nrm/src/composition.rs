//! Weighted composition of per-component progress (Category 3 extension).
//!
//! The paper's future work: "We can improve upon this by studying
//! individual components separately and modeling progress as a weighted
//! combination of the progress of individual components" (§VI.3). A
//! [`CompositeProgress`] normalizes each component's rate by its own
//! uncapped baseline and combines them with weights, yielding a single
//! dimensionless progress fraction that *is* meaningful for URBAN/HACC:
//! 1.0 = every component at full speed, 0.5 = (weighted) half speed.

use serde::{Deserialize, Serialize};

/// A weighted multi-component progress composition.
///
/// ```
/// use nrm::composition::CompositeProgress;
///
/// // URBAN-like: CFD at 4 steps/s, EnergyPlus at 0.07 steps/s uncapped.
/// let c = CompositeProgress::equal(&[4.0, 0.07]);
/// // Under a cap both run at ~60%:
/// assert!((c.fraction(&[2.4, 0.042]) - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeProgress {
    /// Per-component weights; normalized at construction to sum to 1.
    weights: Vec<f64>,
    /// Per-component uncapped baseline rates (units/s, per component).
    baselines: Vec<f64>,
}

impl CompositeProgress {
    /// Build from weights and baseline rates.
    ///
    /// # Panics
    /// Panics if lengths differ, weights are not all positive, or any
    /// baseline is non-positive.
    pub fn new(weights: &[f64], baselines: &[f64]) -> Self {
        assert_eq!(weights.len(), baselines.len(), "length mismatch");
        assert!(!weights.is_empty(), "need at least one component");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        assert!(
            baselines.iter().all(|&b| b > 0.0),
            "baselines must be positive"
        );
        let sum: f64 = weights.iter().sum();
        Self {
            weights: weights.iter().map(|w| w / sum).collect(),
            baselines: baselines.to_vec(),
        }
    }

    /// Equal weights over `n` components.
    pub fn equal(baselines: &[f64]) -> Self {
        Self::new(&vec![1.0; baselines.len()], baselines)
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.weights.len()
    }

    /// The composite progress fraction for the given per-component rates:
    /// `Σ wᵢ · (rᵢ / baselineᵢ)`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn fraction(&self, rates: &[f64]) -> f64 {
        assert_eq!(rates.len(), self.weights.len(), "length mismatch");
        self.weights
            .iter()
            .zip(self.baselines.iter())
            .zip(rates.iter())
            .map(|((w, b), r)| w * (r / b))
            .sum()
    }

    /// The *bottleneck* view: the worst normalized component. Useful when
    /// the slowest component gates the coupled simulation (URBAN's
    /// co-simulation barrier).
    pub fn bottleneck(&self, rates: &[f64]) -> f64 {
        assert_eq!(rates.len(), self.baselines.len(), "length mismatch");
        rates
            .iter()
            .zip(self.baselines.iter())
            .map(|(r, b)| r / b)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_is_one() {
        let c = CompositeProgress::new(&[2.0, 1.0], &[4.0, 0.07]);
        assert!((c.fraction(&[4.0, 0.07]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_are_normalized() {
        let c = CompositeProgress::new(&[3.0, 1.0], &[1.0, 1.0]);
        // Component 0 at half speed, component 1 at full.
        let f = c.fraction(&[0.5, 1.0]);
        assert!((f - (0.75 * 0.5 + 0.25 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn single_metric_misleads_where_composite_does_not() {
        // URBAN-like: CFD at 4 steps/s, EnergyPlus at 0.07 steps/s. A cap
        // that halves only the slow component barely moves a
        // "CFD steps per second" metric but costs half the EP science.
        let c = CompositeProgress::equal(&[4.0, 0.07]);
        let capped = [4.0, 0.035];
        let cfd_only_view = capped[0] / 4.0;
        let composite = c.fraction(&capped);
        assert!((cfd_only_view - 1.0).abs() < 1e-12, "CFD view blind");
        assert!((composite - 0.75).abs() < 1e-12, "composite sees the loss");
    }

    #[test]
    fn bottleneck_is_the_min_normalized_rate() {
        let c = CompositeProgress::equal(&[10.0, 1.0]);
        assert!((c.bottleneck(&[5.0, 0.9]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_rates_rejected() {
        let c = CompositeProgress::equal(&[1.0, 2.0]);
        c.fraction(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        CompositeProgress::new(&[0.0, 1.0], &[1.0, 1.0]);
    }
}
