//! Exponential-backoff retry policy, shared by the per-node daemon and
//! the arbiter-daemon client.
//!
//! Two consumers, one curve. [`crate::resilience::ResilientDaemon`]
//! re-probes a failed primary actuator after
//! `min(2^failures, cap)` control ticks — local, deterministic, no
//! jitter needed because each node probes its own hardware. The
//! `arbiterd` `GrantClient` reconnects to a *shared* daemon, where a
//! whole cluster retrying in lockstep after a daemon restart is a
//! thundering herd; [`Backoff`] therefore adds seeded half-jitter on
//! top of the same [`delay_after`] curve, so reconnect storms decorrelate
//! while every run stays bit-reproducible from its seed.

/// The deterministic retry curve: the wait after the `failures`-th
/// consecutive failure, capped at `cap_ticks`.
///
/// Matches the resilient daemon's historical behaviour exactly:
/// `min(2^min(failures, 16), cap)`, so the doubling saturates before the
/// shift can overflow and the cap bounds the probe interval.
pub fn delay_after(failures: u32, cap_ticks: u32) -> u32 {
    (1u32 << failures.min(16)).min(cap_ticks)
}

/// Stateful jittered backoff for reconnect loops.
///
/// Tracks consecutive failures and draws the actual wait uniformly from
/// `[delay/2, delay]` (half-jitter) using a private SplitMix64 stream, so
/// two clients with different seeds never retry in lockstep but a given
/// seed always reproduces the same schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    cap_ticks: u32,
    failures: u32,
    rng: u64,
}

impl Backoff {
    /// A fresh policy. `cap_ticks` bounds the un-jittered delay;
    /// `seed` fixes the jitter stream (offset by a golden-ratio
    /// increment so seeds 0 and 1 diverge immediately).
    pub fn new(cap_ticks: u32, seed: u64) -> Self {
        assert!(cap_ticks > 0, "backoff cap must be positive");
        Self {
            cap_ticks,
            failures: 0,
            rng: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Consecutive failures recorded since the last [`Backoff::reset`].
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Record one more failure and return how long to wait before the
    /// next attempt, in ticks (always ≥ 1).
    pub fn record_failure(&mut self) -> u32 {
        self.failures = self.failures.saturating_add(1);
        let base = delay_after(self.failures, self.cap_ticks);
        let lo = (base / 2).max(1);
        lo + (self.next_u64() % (base - lo + 1) as u64) as u32
    }

    /// The attempt succeeded: the next failure starts the curve over.
    pub fn reset(&mut self) {
        self.failures = 0;
    }

    /// One SplitMix64 draw.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_the_resilient_daemon() {
        // The exact expression resilience.rs used inline.
        for failures in [1u32, 2, 3, 5, 16, 17, 40] {
            for cap in [1u32, 8, 32, 1 << 20] {
                assert_eq!(
                    delay_after(failures, cap),
                    (1u32 << failures.min(16)).min(cap)
                );
            }
        }
        assert_eq!(delay_after(1, 32), 2);
        assert_eq!(delay_after(5, 32), 32);
        assert_eq!(delay_after(40, u32::MAX), 1 << 16, "shift saturates");
    }

    #[test]
    fn jittered_delay_stays_in_the_half_jitter_window() {
        let mut b = Backoff::new(64, 7);
        for _ in 0..200 {
            let f = b.failures() + 1;
            let d = b.record_failure();
            let base = delay_after(f, 64);
            assert!(d >= (base / 2).max(1) && d <= base, "{d} vs base {base}");
        }
    }

    #[test]
    fn reset_restarts_the_curve_and_seeds_reproduce() {
        let mut a = Backoff::new(32, 42);
        let first: Vec<u32> = (0..6).map(|_| a.record_failure()).collect();
        a.reset();
        assert_eq!(a.failures(), 0);

        // Same seed, same schedule (state continues the same stream).
        let mut b = Backoff::new(32, 42);
        let again: Vec<u32> = (0..6).map(|_| b.record_failure()).collect();
        assert_eq!(first, again);

        // Different seeds decorrelate somewhere in a short schedule.
        let mut c = Backoff::new(32, 43);
        let other: Vec<u32> = (0..6).map(|_| c.record_failure()).collect();
        assert_ne!(first, other);
    }
}
