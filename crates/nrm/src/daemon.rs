//! The NRM daemon: a 1 Hz control loop.
//!
//! "The power-policy tool runs as a background daemon on the node. It
//! monitors power usage and applies the selected dynamic power-capping
//! scheme on the package domain once every second" (paper §V.B). The
//! daemon is a [`SimAgent`]; the SPMD driver ticks it alongside the
//! application, and it records what it observed (cap programmed, average
//! power measured) for the experiment harness.

use simnode::agent::SimAgent;
use simnode::node::Node;
use simnode::time::{Nanos, SEC};

use crate::actuator::{Actuator, ActuatorKind};
use crate::scheme::CapSchedule;

/// One daemon observation per tick, including per-tick health counters so
/// experiments can audit how the control loop coped with faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonSample {
    /// Tick time, ns.
    pub at: Nanos,
    /// Cap programmed at this tick (`None` = uncapped).
    pub cap_w: Option<f64>,
    /// Average package power over the preceding second, W.
    pub avg_power_w: f64,
    /// Health: every actuation attempt this tick failed (the knob was not
    /// moved).
    pub actuation_failed: bool,
    /// Health: a fallback actuator, not the primary, performed the
    /// actuation this tick.
    pub fallback_used: bool,
    /// Health: write retries spent this tick (0 for the naive daemon,
    /// which never retries).
    pub retries: u32,
    /// Health: result of read-back verification of the programmed cap —
    /// `None` when not performed, `Some(false)` when the register did not
    /// hold the requested value.
    pub verified: Option<bool>,
    /// Health: the safe-mode floor cap was in force this tick.
    pub safe_mode: bool,
}

impl DaemonSample {
    /// A healthy observation with no resilience machinery engaged.
    pub fn healthy(at: Nanos, cap_w: Option<f64>, avg_power_w: f64) -> Self {
        Self {
            at,
            cap_w,
            avg_power_w,
            actuation_failed: false,
            fallback_used: false,
            retries: 0,
            verified: None,
            safe_mode: false,
        }
    }
}

/// The node resource manager daemon.
pub struct NrmDaemon {
    schedule: Box<dyn CapSchedule>,
    actuator: Actuator,
    period: Nanos,
    start: Option<Nanos>,
    /// Observations, one per tick.
    pub samples: Vec<DaemonSample>,
}

impl NrmDaemon {
    /// A daemon applying `schedule` through `actuator` once per second.
    pub fn new(schedule: Box<dyn CapSchedule>, actuator: ActuatorKind) -> Self {
        Self {
            schedule,
            actuator: Actuator::new(actuator),
            period: SEC,
            start: None,
            samples: Vec::new(),
        }
    }

    /// Override the control period (tests).
    pub fn with_period(mut self, period: Nanos) -> Self {
        assert!(period > 0);
        self.period = period;
        self
    }

    /// The cap the schedule will program at `elapsed` since first tick.
    pub fn planned_cap(&self, elapsed: Nanos) -> Option<f64> {
        self.schedule.cap_at(elapsed)
    }

    /// The most recent observation, if the daemon has ticked at all.
    pub fn last_sample(&self) -> Option<&DaemonSample> {
        self.samples.last()
    }
}

impl SimAgent for NrmDaemon {
    fn period(&self) -> Nanos {
        self.period
    }

    fn on_tick(&mut self, node: &mut Node, now: Nanos) {
        let start = *self.start.get_or_insert(now);
        let elapsed = now - start;
        let cap = self.schedule.cap_at(elapsed);
        // The naive daemon assumes actuation succeeds: it records the
        // failure for the audit trail but neither retries nor falls back.
        // (Contrast `crate::resilience::ResilientDaemon`.)
        let failed = self.actuator.apply(node, cap).is_err();
        self.samples.push(DaemonSample {
            actuation_failed: failed,
            ..DaemonSample::healthy(now, cap, node.average_power(self.period))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{LinearDecay, StepFunction};
    use simnode::config::NodeConfig;
    use simnode::node::{CoreWork, WorkPacket};

    fn run_daemon(mut daemon: NrmDaemon, seconds: u64) -> NrmDaemon {
        let mut node = Node::new(NodeConfig::default());
        for c in 0..node.cores() {
            node.assign(
                c,
                CoreWork::Compute(
                    WorkPacket {
                        cycles: 3.3e9 * 600.0,
                        misses: 0.0,
                        instructions: 1e9,
                        mlp: 1.0,
                        mem_weight: 1.0,
                    }
                    .into(),
                ),
            );
        }
        let quanta = (SEC / node.config().quantum) as usize;
        for _ in 0..seconds {
            for _ in 0..quanta {
                node.step();
            }
            let now = node.now();
            daemon.on_tick(&mut node, now);
        }
        daemon
    }

    #[test]
    fn daemon_programs_the_scheduled_caps() {
        let sched = StepFunction::half_half(70.0, 10 * SEC);
        let d = run_daemon(NrmDaemon::new(Box::new(sched), ActuatorKind::Rapl), 20);
        let caps: Vec<Option<f64>> = d.samples.iter().map(|s| s.cap_w).collect();
        // First 5 ticks: elapsed 0..5 s → uncapped; ticks at 5..15 s →
        // capped; back to uncapped.
        assert_eq!(caps[0], None);
        assert!(caps.contains(&Some(70.0)));
        let capped = caps.iter().filter(|c| c.is_some()).count();
        assert!(
            (8..=12).contains(&capped),
            "half the ticks capped: {capped}"
        );
    }

    #[test]
    fn measured_power_follows_a_linear_decay() {
        let sched = LinearDecay {
            uncapped_for: 3 * SEC,
            from_w: 140.0,
            to_w: 60.0,
            ramp: 10 * SEC,
        };
        let d = run_daemon(NrmDaemon::new(Box::new(sched), ActuatorKind::Rapl), 18);
        // Late samples should sit near the 60 W floor.
        let last = d.last_sample().expect("daemon ticked");
        assert!(
            (last.avg_power_w - 60.0).abs() < 8.0,
            "settled power {:.1} W",
            last.avg_power_w
        );
        // Power during the ramp must be decreasing overall.
        let early = d.samples[4].avg_power_w;
        let late = d.samples[14].avg_power_w;
        assert!(late < early - 20.0, "{early:.1} → {late:.1}");
    }

    #[test]
    fn daemon_period_defaults_to_one_second() {
        let d = NrmDaemon::new(Box::new(crate::scheme::Uncapped), ActuatorKind::Rapl);
        assert_eq!(SimAgent::period(&d), SEC);
    }
}
