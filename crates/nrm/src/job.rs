//! Job-level power management (paper §II).
//!
//! The paper situates the NRM inside the Argo hierarchy: "inside each job,
//! this power budget is then distributed to nodes, according to
//! application characteristics and node variability", and motivates
//! progress monitoring precisely so such distribution can be done well.
//! This module implements that layer over any set of managed nodes:
//!
//! - [`JobPolicy::EqualSplit`] divides the job budget evenly (the baseline
//!   an application-agnostic manager would use);
//! - [`JobPolicy::ProgressAware`] re-divides it each epoch in proportion
//!   to *inverse normalized progress*, pushing watts toward the node that
//!   is furthest behind — for bulk-synchronous jobs the job's progress is
//!   the minimum across nodes (Rountree et al.'s variability argument,
//!   which the paper cites).
//!
//! The node abstraction is a trait so this crate stays independent of the
//! workload layer; `powerprog-core` provides the simulation-backed
//! implementation.

use serde::{Deserialize, Serialize};

/// What the job manager can see of one node per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Progress over the last epoch, app units/s.
    pub rate: f64,
    /// The node's uncapped reference rate, app units/s.
    pub baseline_rate: f64,
    /// Average power over the last epoch, W.
    pub power_w: f64,
}

impl NodeStatus {
    /// Progress normalized to the node's own uncapped baseline.
    pub fn normalized(&self) -> f64 {
        if self.baseline_rate <= 0.0 {
            0.0
        } else {
            self.rate / self.baseline_rate
        }
    }
}

/// A node the job manager can drive.
pub trait ManagedNode {
    /// Apply `cap_w` (None = uncapped) and advance one epoch of simulated
    /// time; return the node's status over that epoch.
    fn run_epoch(&mut self, cap_w: Option<f64>) -> NodeStatus;

    /// The node's uncapped reference rate (measured before management).
    fn baseline_rate(&self) -> f64;
}

/// Budget-division policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobPolicy {
    /// Every node gets `budget / n`.
    EqualSplit,
    /// Watts flow toward the slowest (normalized) node: node `i` gets a
    /// share ∝ `(1/normalizedᵢ)^gain`. `gain` = 0 degenerates to equal
    /// split; 1–2 is a sensible range.
    ProgressAware {
        /// Reallocation aggressiveness.
        gain: f64,
    },
}

/// Per-epoch record of the job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEpoch {
    /// Caps handed to each node this epoch, W.
    pub caps_w: Vec<f64>,
    /// Normalized progress of each node over the epoch.
    pub normalized: Vec<f64>,
    /// The job's (bulk-synchronous) progress: the minimum across nodes.
    pub job_progress: f64,
}

/// The job-level manager.
#[derive(Debug, Clone)]
pub struct JobPowerManager {
    /// Total job power budget, W.
    pub budget_w: f64,
    /// Division policy.
    pub policy: JobPolicy,
}

impl JobPowerManager {
    /// Create a manager.
    ///
    /// # Panics
    /// Panics on a non-positive budget or negative gain.
    pub fn new(budget_w: f64, policy: JobPolicy) -> Self {
        assert!(budget_w > 0.0, "budget must be positive");
        if let JobPolicy::ProgressAware { gain } = policy {
            assert!(gain >= 0.0, "gain must be non-negative");
        }
        Self { budget_w, policy }
    }

    /// Divide the budget for the next epoch given the last-epoch statuses
    /// (uniform when no history exists yet).
    pub fn allocate(&self, last: Option<&[NodeStatus]>, n: usize) -> Vec<f64> {
        assert!(n > 0);
        let even = self.budget_w / n as f64;
        let Some(statuses) = last else {
            return vec![even; n];
        };
        assert_eq!(statuses.len(), n, "status arity mismatch");
        match self.policy {
            JobPolicy::EqualSplit => vec![even; n],
            JobPolicy::ProgressAware { gain } => {
                let weights: Vec<f64> = statuses
                    .iter()
                    .map(|s| {
                        let norm = s.normalized().clamp(0.05, 2.0);
                        (1.0 / norm).powf(gain)
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                weights.iter().map(|w| self.budget_w * w / total).collect()
            }
        }
    }

    /// Run `epochs` management epochs over the nodes, returning the trace.
    pub fn run(&self, nodes: &mut [&mut dyn ManagedNode], epochs: usize) -> Vec<JobEpoch> {
        let n = nodes.len();
        assert!(n > 0, "need at least one node");
        let mut trace = Vec::with_capacity(epochs);
        let mut last: Option<Vec<NodeStatus>> = None;
        for _ in 0..epochs {
            let caps = self.allocate(last.as_deref(), n);
            let statuses: Vec<NodeStatus> = nodes
                .iter_mut()
                .zip(&caps)
                .map(|(node, &cap)| node.run_epoch(Some(cap)))
                .collect();
            let normalized: Vec<f64> = statuses.iter().map(|s| s.normalized()).collect();
            let job_progress = normalized.iter().copied().fold(f64::INFINITY, f64::min);
            trace.push(JobEpoch {
                caps_w: caps,
                normalized,
                job_progress,
            });
            last = Some(statuses);
        }
        trace
    }
}

/// Mean job progress over the trailing half of a trace (the settled view).
pub fn settled_job_progress(trace: &[JobEpoch]) -> f64 {
    let half = trace.len() / 2;
    let tail = &trace[half..];
    if tail.is_empty() {
        return 0.0;
    }
    tail.iter().map(|e| e.job_progress).sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An analytic fake node: rate = baseline · min(1, cap/need)^k, with a
    /// per-node "need" so heterogeneity is expressible without the
    /// simulator.
    struct FakeNode {
        baseline: f64,
        need_w: f64,
        k: f64,
    }

    impl ManagedNode for FakeNode {
        fn run_epoch(&mut self, cap_w: Option<f64>) -> NodeStatus {
            let cap = cap_w.unwrap_or(self.need_w);
            let frac = (cap / self.need_w).min(1.0);
            NodeStatus {
                rate: self.baseline * frac.powf(self.k),
                baseline_rate: self.baseline,
                power_w: cap.min(self.need_w),
            }
        }
        fn baseline_rate(&self) -> f64 {
            self.baseline
        }
    }

    fn heterogeneous_nodes() -> Vec<FakeNode> {
        // One power-hungry (leaky) node needs 150 W for full speed; the
        // others need 110 W.
        vec![
            FakeNode {
                baseline: 100.0,
                need_w: 110.0,
                k: 0.7,
            },
            FakeNode {
                baseline: 100.0,
                need_w: 110.0,
                k: 0.7,
            },
            FakeNode {
                baseline: 100.0,
                need_w: 110.0,
                k: 0.7,
            },
            FakeNode {
                baseline: 100.0,
                need_w: 150.0,
                k: 0.7,
            },
        ]
    }

    fn run_policy(policy: JobPolicy) -> f64 {
        let mut nodes = heterogeneous_nodes();
        let mut refs: Vec<&mut dyn ManagedNode> = nodes
            .iter_mut()
            .map(|n| n as &mut dyn ManagedNode)
            .collect();
        let mgr = JobPowerManager::new(440.0, policy);
        let trace = mgr.run(&mut refs, 12);
        settled_job_progress(&trace)
    }

    #[test]
    fn progress_aware_beats_equal_split_under_variability() {
        let equal = run_policy(JobPolicy::EqualSplit);
        let aware = run_policy(JobPolicy::ProgressAware { gain: 1.5 });
        assert!(
            aware > equal * 1.03,
            "progress-aware {aware:.3} should beat equal split {equal:.3}"
        );
    }

    #[test]
    fn allocations_conserve_the_budget() {
        let mgr = JobPowerManager::new(400.0, JobPolicy::ProgressAware { gain: 2.0 });
        let statuses = vec![
            NodeStatus {
                rate: 50.0,
                baseline_rate: 100.0,
                power_w: 90.0,
            },
            NodeStatus {
                rate: 90.0,
                baseline_rate: 100.0,
                power_w: 90.0,
            },
            NodeStatus {
                rate: 99.0,
                baseline_rate: 100.0,
                power_w: 90.0,
            },
        ];
        let caps = mgr.allocate(Some(&statuses), 3);
        assert!((caps.iter().sum::<f64>() - 400.0).abs() < 1e-9);
        // Slowest node gets the most.
        assert!(caps[0] > caps[1] && caps[1] > caps[2]);
    }

    #[test]
    fn zero_gain_degenerates_to_equal_split() {
        let mgr = JobPowerManager::new(300.0, JobPolicy::ProgressAware { gain: 0.0 });
        let statuses = vec![
            NodeStatus {
                rate: 10.0,
                baseline_rate: 100.0,
                power_w: 50.0,
            },
            NodeStatus {
                rate: 90.0,
                baseline_rate: 100.0,
                power_w: 90.0,
            },
        ];
        let caps = mgr.allocate(Some(&statuses), 2);
        assert!((caps[0] - 150.0).abs() < 1e-9 && (caps[1] - 150.0).abs() < 1e-9);
    }

    #[test]
    fn first_epoch_is_uniform() {
        let mgr = JobPowerManager::new(200.0, JobPolicy::ProgressAware { gain: 1.0 });
        assert_eq!(mgr.allocate(None, 4), vec![50.0; 4]);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn rejects_non_positive_budget() {
        JobPowerManager::new(0.0, JobPolicy::EqualSplit);
    }
}
