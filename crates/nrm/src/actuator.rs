//! Power-limiting actuators.
//!
//! The NRM can enforce a node power target through different knobs
//! (paper §II: "dynamic voltage frequency scaling (DVFS), dynamic duty
//! cycle modulation (DDCM), and dynamic hardware power capping methods
//! such as Intel's RAPL"):
//!
//! - [`ActuatorKind::Rapl`] programs `MSR_PKG_POWER_LIMIT` and lets the
//!   hardware controller do the rest;
//! - [`ActuatorKind::DirectDvfs`] closes the loop in software: it walks
//!   `IA32_PERF_CTL` up/down one P-state per tick based on measured
//!   average power. Its *applicable range* is bounded below by the power
//!   draw at `f_min` — the limitation visible in the paper's Fig. 5;
//! - [`ActuatorKind::Ddcm`] does the same with `IA32_CLOCK_MODULATION`
//!   duty steps.

use serde::{Deserialize, Serialize};
use simnode::ddcm::DutyCycle;
use simnode::hw::{
    decode_perf_ctl, encode_perf_ctl, MsrError, IA32_CLOCK_MODULATION, IA32_PERF_CTL,
    MSR_PKG_POWER_LIMIT,
};
use simnode::node::Node;
use simnode::time::SEC;

/// Which knob to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActuatorKind {
    /// Hardware RAPL package cap.
    Rapl,
    /// Software DVFS feedback loop.
    DirectDvfs,
    /// Software duty-cycle feedback loop.
    Ddcm,
}

/// An actuator instance (holds feedback state for the software loops).
#[derive(Debug, Clone)]
pub struct Actuator {
    kind: ActuatorKind,
    /// Hysteresis band around the target, W.
    band_w: f64,
}

impl Actuator {
    /// Create an actuator of the given kind.
    pub fn new(kind: ActuatorKind) -> Self {
        Self { kind, band_w: 2.0 }
    }

    /// The actuator kind.
    pub fn kind(&self) -> ActuatorKind {
        self.kind
    }

    /// Enforce `target` (W; `None` = lift all limits) on the node. Called
    /// once per daemon tick.
    ///
    /// Returns an error when the knob write itself fails (e.g. under
    /// injected MSR faults); the caller decides whether to retry, fall
    /// back to another actuator, or carry on with the stale setting. For
    /// the software loops, clearing a leftover RAPL cap is best-effort: a
    /// stale cap coexisting with the DVFS/DDCM knob only makes the node
    /// *more* constrained, never less, so it is not worth failing over.
    ///
    /// Backends advertise what they implement via
    /// [`Capabilities`](simnode::hw::Capabilities); a knob the backend
    /// lacks fails fast with [`MsrError::Unsupported`] naming the
    /// register, before any write is attempted.
    pub fn apply(&mut self, node: &mut Node, target: Option<f64>) -> Result<(), MsrError> {
        let caps = node.msr().capabilities();
        match self.kind {
            ActuatorKind::Rapl => {
                if !caps.power_limit {
                    return Err(MsrError::Unsupported(MSR_PKG_POWER_LIMIT));
                }
                node.set_package_cap(target)
            }
            ActuatorKind::DirectDvfs => {
                if !caps.perf_ctl {
                    return Err(MsrError::Unsupported(IA32_PERF_CTL));
                }
                let _ = node.set_package_cap(None);
                let Some(t) = target else {
                    return node.msr_mut().write(IA32_PERF_CTL, 0);
                };
                let ladder = node.config().ladder.clone();
                let cur_mhz = decode_perf_ctl(node.msr().hw_read(IA32_PERF_CTL))
                    .unwrap_or_else(|| ladder.fmax_mhz());
                let cur = ladder.pstate_at_or_below(cur_mhz);
                let power = node.average_power(SEC);
                let next = if power > t + self.band_w && cur > ladder.min_pstate() {
                    simnode::freq::PState(cur.0 - 1)
                } else if power < t - self.band_w && cur < ladder.max_pstate() {
                    simnode::freq::PState(cur.0 + 1)
                } else {
                    cur
                };
                node.msr_mut()
                    .write(IA32_PERF_CTL, encode_perf_ctl(ladder.mhz(next)))
            }
            ActuatorKind::Ddcm => {
                if !caps.clock_modulation {
                    return Err(MsrError::Unsupported(IA32_CLOCK_MODULATION));
                }
                let _ = node.set_package_cap(None);
                let Some(t) = target else {
                    return node
                        .msr_mut()
                        .write(IA32_CLOCK_MODULATION, DutyCycle::FULL.encode_msr());
                };
                let cur = DutyCycle::decode_msr(node.msr().hw_read(IA32_CLOCK_MODULATION));
                let power = node.average_power(SEC);
                let next = if power > t + self.band_w {
                    cur.lower()
                } else if power < t - self.band_w {
                    cur.raise()
                } else {
                    cur
                };
                node.msr_mut()
                    .write(IA32_CLOCK_MODULATION, next.encode_msr())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::config::NodeConfig;
    use simnode::node::{CoreWork, WorkPacket};
    use simnode::time::MS;

    fn busy_node() -> Node {
        let mut node = Node::new(NodeConfig::default());
        for c in 0..node.cores() {
            node.assign(
                c,
                CoreWork::Compute(
                    WorkPacket {
                        cycles: 3.3e9 * 60.0,
                        misses: 0.0,
                        instructions: 1e9,
                        mlp: 1.0,
                        mem_weight: 1.0,
                    }
                    .into(),
                ),
            );
        }
        node
    }

    fn run_with_actuator(kind: ActuatorKind, target: f64, seconds: u64) -> Node {
        let mut node = busy_node();
        let mut act = Actuator::new(kind);
        let quanta_per_tick = (SEC / node.config().quantum) as usize;
        for _ in 0..seconds {
            act.apply(&mut node, Some(target)).unwrap();
            for _ in 0..quanta_per_tick {
                node.step();
            }
        }
        node
    }

    #[test]
    fn rapl_actuator_programs_the_msr_cap() {
        let mut node = busy_node();
        let mut act = Actuator::new(ActuatorKind::Rapl);
        act.apply(&mut node, Some(95.0)).unwrap();
        assert_eq!(node.package_cap(), Some(95.0));
        act.apply(&mut node, None).unwrap();
        assert_eq!(node.package_cap(), None);
    }

    #[test]
    fn dvfs_actuator_converges_near_target_within_its_range() {
        let node = run_with_actuator(ActuatorKind::DirectDvfs, 100.0, 12);
        let p = node.average_power(2 * SEC);
        assert!(
            (85.0..110.0).contains(&p),
            "DVFS loop should settle near 100 W, got {p:.1}"
        );
        // RAPL must be disengaged.
        assert_eq!(node.package_cap(), None);
    }

    #[test]
    fn dvfs_actuator_cannot_go_below_fmin_power() {
        // Target far below the fmin draw: the loop pins at the lowest
        // P-state and power floors well above the target (Fig. 5's
        // "applicable range").
        // 21 ladder steps at one per tick: give the loop 30 ticks.
        let node = run_with_actuator(ActuatorKind::DirectDvfs, 20.0, 30);
        let p = node.average_power(2 * SEC);
        assert!(p > 35.0, "power {p:.1} W cannot reach a 20 W target");
        let t = node.telemetry();
        assert!(
            (t.effective_mhz - 1200.0).abs() < 1.0,
            "should be pinned at fmin, got {:.0} MHz",
            t.effective_mhz
        );
    }

    #[test]
    fn ddcm_actuator_reaches_lower_power_than_dvfs() {
        let dvfs = run_with_actuator(ActuatorKind::DirectDvfs, 20.0, 15);
        let ddcm = run_with_actuator(ActuatorKind::Ddcm, 20.0, 30);
        let p_dvfs = dvfs.average_power(2 * SEC);
        let p_ddcm = ddcm.average_power(2 * SEC);
        assert!(
            p_ddcm < p_dvfs,
            "DDCM ({p_ddcm:.1} W) should undercut DVFS ({p_dvfs:.1} W)"
        );
    }

    #[test]
    fn lifting_dvfs_target_restores_full_frequency() {
        let mut node = busy_node();
        let mut act = Actuator::new(ActuatorKind::DirectDvfs);
        act.apply(&mut node, Some(60.0)).unwrap();
        for _ in 0..20_000 {
            node.step();
        }
        act.apply(&mut node, None).unwrap();
        for _ in 0..(20 * MS / node.config().quantum) {
            node.step();
        }
        assert!(node.telemetry().effective_mhz > 3000.0);
    }
}
