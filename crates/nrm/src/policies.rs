//! Envisioned NRM policies (paper §II).
//!
//! The paper motivates progress monitoring with two node-level policies:
//! "the NRM receives gradually decreasing power budgets and chooses the
//! optimal strategy that respects the power budget with the least impact
//! on performance", and a hard immediate cap for preempted low-priority
//! jobs. With the `powermodel` predictor in hand both become computable.
//! [`choose_strategy`] picks, for a given budget, the technique with the
//! smallest predicted progress loss; [`ramp_plan`] applies it along a
//! decreasing budget sequence.

use powermodel::eqs::eq3_progress_at_freq;
use powermodel::predict::ProgressModel;
use serde::{Deserialize, Serialize};

use crate::actuator::ActuatorKind;

/// A calibration point for the DVFS technique: running at `f_mhz` draws
/// `package_w` watts (measured by a frequency sweep of the target app).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqPowerPoint {
    /// Core frequency, MHz.
    pub f_mhz: f64,
    /// Package power at that frequency, W.
    pub package_w: f64,
}

/// The strategy the policy selected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    /// Which knob to use.
    pub actuator: ActuatorKind,
    /// For DVFS: the frequency to pin, MHz.
    pub dvfs_mhz: Option<f64>,
    /// Predicted progress rate under the budget, app units/s.
    pub predicted_rate: f64,
}

/// A measured progress-vs-power response curve, sorted by watts.
/// Used to override the analytic model with observed RAPL behaviour —
/// the paper's Fig. 5 shows the model's optimism about RAPL on
/// memory-bound codes, so a policy relying on Eq. 7 alone would pick
/// RAPL where DVFS is measurably better.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateCurve {
    points: Vec<(f64, f64)>,
}

impl RateCurve {
    /// Build from `(watts, rate)` samples.
    ///
    /// # Panics
    /// Panics if empty or not strictly increasing in watts.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "need at least one sample");
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate watt samples"
        );
        Self { points }
    }

    /// Linearly interpolated rate at `watts`, clamped at the ends.
    pub fn rate_at(&self, watts: f64) -> f64 {
        let p = &self.points;
        if watts <= p[0].0 {
            return p[0].1;
        }
        if watts >= p[p.len() - 1].0 {
            return p[p.len() - 1].1;
        }
        let i = p.partition_point(|&(w, _)| w <= watts);
        let (w0, r0) = p[i - 1];
        let (w1, r1) = p[i];
        r0 + (watts - w0) / (w1 - w0) * (r1 - r0)
    }
}

/// Choose the technique with the least predicted progress impact under
/// `budget_w`.
///
/// - RAPL is always applicable; its rate comes from measured data when
///   `measured_rapl` is given, else from the paper's model (Eq. 7 via
///   [`ProgressModel::predict_rate`]) — note the model is *optimistic*
///   about RAPL (it assumes pure core DVFS), so supplying measurements
///   matters for memory-bound codes (paper Fig. 5).
/// - Direct DVFS is applicable only where some ladder point draws at most
///   the budget (Fig. 5's "range that it is applicable in"); its rate
///   comes from Eq. 1/3 at the chosen frequency.
///
/// # Panics
/// Panics if `freq_power` is empty or the budget is non-positive.
pub fn choose_strategy(
    model: &ProgressModel,
    freq_power: &[FreqPowerPoint],
    fmax_mhz: f64,
    budget_w: f64,
    measured_rapl: Option<&RateCurve>,
) -> Strategy {
    assert!(!freq_power.is_empty(), "need a frequency/power calibration");
    assert!(budget_w > 0.0, "budget must be positive");

    let rapl = Strategy {
        actuator: ActuatorKind::Rapl,
        dvfs_mhz: None,
        predicted_rate: measured_rapl
            .map(|c| c.rate_at(budget_w))
            .unwrap_or_else(|| model.predict_rate(budget_w)),
    };

    // Highest calibrated frequency whose measured package power fits.
    let dvfs = freq_power
        .iter()
        .filter(|p| p.package_w <= budget_w)
        .max_by(|a, b| a.f_mhz.total_cmp(&b.f_mhz))
        .map(|p| Strategy {
            actuator: ActuatorKind::DirectDvfs,
            dvfs_mhz: Some(p.f_mhz),
            predicted_rate: eq3_progress_at_freq(model.r_max, model.beta, fmax_mhz, p.f_mhz),
        });

    match dvfs {
        Some(d) if d.predicted_rate > rapl.predicted_rate => d,
        _ => rapl,
    }
}

/// Apply [`choose_strategy`] along a decreasing budget sequence; returns
/// one strategy per budget.
pub fn ramp_plan(
    model: &ProgressModel,
    freq_power: &[FreqPowerPoint],
    fmax_mhz: f64,
    budgets: &[f64],
    measured_rapl: Option<&RateCurve>,
) -> Vec<Strategy> {
    budgets
        .iter()
        .map(|&b| choose_strategy(model, freq_power, fmax_mhz, b, measured_rapl))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// STREAM-like: β = 0.37, memory power keeps the package draw high
    /// even at low frequency.
    fn stream_model() -> ProgressModel {
        ProgressModel::from_uncapped_run(0.37, 2.0, 119.0, 16.0)
    }

    fn stream_freq_power() -> Vec<FreqPowerPoint> {
        // Package power falls slowly with f (uncore dominates).
        vec![
            FreqPowerPoint {
                f_mhz: 1200.0,
                package_w: 88.0,
            },
            FreqPowerPoint {
                f_mhz: 2000.0,
                package_w: 98.0,
            },
            FreqPowerPoint {
                f_mhz: 2800.0,
                package_w: 110.0,
            },
            FreqPowerPoint {
                f_mhz: 3300.0,
                package_w: 119.0,
            },
        ]
    }

    /// Measured STREAM progress under RAPL caps (Fig. 5 shape: RAPL hurts
    /// STREAM more than the model admits, because it throttles the uncore).
    fn measured_rapl_curve() -> RateCurve {
        RateCurve::new(vec![(60.0, 6.0), (80.0, 9.0), (100.0, 12.0), (119.0, 16.0)])
    }

    #[test]
    fn model_only_policy_is_fooled_into_rapl() {
        // The Eq. 7 model is optimistic about RAPL (it assumes pure core
        // DVFS), so without measurements the policy prefers RAPL even for
        // STREAM — the pitfall Fig. 5 exposes.
        let m = stream_model();
        let s = choose_strategy(&m, &stream_freq_power(), 3300.0, 100.0, None);
        assert_eq!(s.actuator, ActuatorKind::Rapl);
    }

    #[test]
    fn dvfs_wins_for_stream_with_measured_rapl_data() {
        // Paper Fig. 5: "DVFS performs better in the range that it is
        // applicable in."
        let m = stream_model();
        let curve = measured_rapl_curve();
        let s = choose_strategy(&m, &stream_freq_power(), 3300.0, 100.0, Some(&curve));
        assert_eq!(s.actuator, ActuatorKind::DirectDvfs);
        assert_eq!(s.dvfs_mhz, Some(2000.0));
        // Measured RAPL at 100 W (12/s) loses to DVFS at 2000 MHz (~12.9/s).
        assert!(s.predicted_rate > 12.0);
    }

    #[test]
    fn rapl_is_the_fallback_below_dvfs_range() {
        let m = stream_model();
        let curve = measured_rapl_curve();
        let s = choose_strategy(&m, &stream_freq_power(), 3300.0, 70.0, Some(&curve));
        assert_eq!(s.actuator, ActuatorKind::Rapl);
    }

    #[test]
    fn ramp_plan_degrades_monotonically() {
        let m = stream_model();
        let budgets = [119.0, 110.0, 100.0, 90.0, 80.0, 70.0];
        let plan = ramp_plan(&m, &stream_freq_power(), 3300.0, &budgets, None);
        assert_eq!(plan.len(), budgets.len());
        for w in plan.windows(2) {
            assert!(
                w[1].predicted_rate <= w[0].predicted_rate + 1e-9,
                "predicted rate should not rise as the budget falls"
            );
        }
    }

    #[test]
    fn rate_curve_interpolates_and_clamps() {
        let c = measured_rapl_curve();
        assert_eq!(c.rate_at(40.0), 6.0);
        assert_eq!(c.rate_at(130.0), 16.0);
        assert!((c.rate_at(90.0) - 10.5).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_app_prefers_whichever_rate_is_higher() {
        // For β = 1 the Eq. 3 DVFS prediction and the Eq. 7 RAPL
        // prediction use the same β — RAPL's Eq. 5 split gives the core
        // the full cap, so RAPL should be at least as good.
        let m = ProgressModel::from_uncapped_run(1.0, 2.0, 155.0, 1080.0);
        let fp = vec![
            FreqPowerPoint {
                f_mhz: 1200.0,
                package_w: 45.0,
            },
            FreqPowerPoint {
                f_mhz: 3300.0,
                package_w: 155.0,
            },
        ];
        let s = choose_strategy(&m, &fp, 3300.0, 100.0, None);
        assert!(s.predicted_rate > 0.0);
    }

    #[test]
    #[should_panic(expected = "calibration")]
    fn empty_calibration_rejected() {
        choose_strategy(&stream_model(), &[], 3300.0, 100.0, None);
    }
}
