//! Hardened NRM control loop: retry, read-back, fallback, safe mode.
//!
//! [`crate::daemon::NrmDaemon`] assumes the hardware always cooperates:
//! every MSR write lands, every cap latches instantly, the energy counter
//! always advances. Under injected faults (see [`simnode::faults`]) those
//! assumptions break and the naive loop silently loses control of the
//! power budget. [`ResilientDaemon`] is the hardened counterpart:
//!
//! - **retry with backoff** — failed knob writes are retried within the
//!   tick, and a repeatedly failing primary actuator is re-probed on an
//!   exponential tick schedule rather than hammered;
//! - **read-back verification** — after programming a RAPL cap, the
//!   daemon reads `MSR_PKG_POWER_LIMIT` back and checks the cap actually
//!   latched, catching writes that report success but are dropped or
//!   deferred;
//! - **fallback actuator chain** — when RAPL is unusable the daemon
//!   degrades to direct DVFS, then DDCM, recovering to the primary once
//!   the fault clears;
//! - **safe-mode floor** — sustained budget overshoot (every actuator
//!   failing, or caps not biting) engages a conservative floor cap below
//!   the scheduled budget until measurements come back in line;
//! - **MSR-based power sensing** — power is measured the way a real
//!   daemon measures it, from the wrapping `MSR_PKG_ENERGY_STATUS`
//!   counter, with wrap handling and plausibility filtering so stuck or
//!   jumping counters degrade the estimate instead of poisoning it.

use simnode::agent::SimAgent;
use simnode::hw::{
    PowerLimit, RaplUnits, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
use simnode::node::Node;
use simnode::time::{Nanos, SEC};

use crate::actuator::{Actuator, ActuatorKind};
use crate::daemon::DaemonSample;
use crate::scheme::CapSchedule;

/// Tuning for the hardened control loop.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Immediate write retries per actuator per tick.
    pub max_retries: u32,
    /// Verify RAPL cap writes by reading the register back.
    pub readback: bool,
    /// Actuators to fall back to, in order, after the primary.
    pub fallbacks: Vec<ActuatorKind>,
    /// Ceiling for the exponential primary re-probe interval, ticks.
    pub backoff_cap_ticks: u32,
    /// Measured power may exceed the budget by this much before a tick
    /// counts as an overshoot, W.
    pub overshoot_tolerance_w: f64,
    /// Consecutive overshoot ticks before safe mode engages.
    pub safe_mode_after: u32,
    /// Safe mode programs `budget - safe_margin_w` (floored at
    /// `min_floor_w`) instead of the scheduled cap.
    pub safe_margin_w: f64,
    /// Lowest cap safe mode will ever program, W.
    pub min_floor_w: f64,
    /// Consecutive in-budget ticks before safe mode disengages.
    pub recover_after: u32,
    /// Power readings above this are discarded as implausible (counter
    /// jumps), W.
    pub max_plausible_w: f64,
    /// Power readings below this are discarded as implausible (stuck
    /// counters; a powered package always burns static power), W.
    pub min_plausible_w: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            readback: true,
            fallbacks: vec![ActuatorKind::DirectDvfs, ActuatorKind::Ddcm],
            backoff_cap_ticks: 32,
            overshoot_tolerance_w: 5.0,
            safe_mode_after: 3,
            safe_margin_w: 10.0,
            min_floor_w: 30.0,
            recover_after: 5,
            max_plausible_w: 400.0,
            min_plausible_w: 1.0,
        }
    }
}

/// Package power measured the way user-space tooling measures it: from
/// the wrapping 32-bit `MSR_PKG_ENERGY_STATUS` counter.
#[derive(Debug, Clone, Default)]
pub struct MsrPowerSensor {
    /// Cached RAPL units (the unit register is read-only and constant;
    /// cached at first successful read so blackouts don't lose it).
    units: Option<RaplUnits>,
    /// Last good raw reading: (time, counter).
    last: Option<(Nanos, u64)>,
    /// Reads that failed at the MSR layer.
    pub read_errors: u64,
    /// Readings discarded by the plausibility filter.
    pub implausible: u64,
}

impl MsrPowerSensor {
    /// New sensor; units are fetched lazily through the allow-list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample average power since the previous good sample, W. Returns
    /// `None` on the first call, on MSR read failure, or when the reading
    /// fails the `[min_plausible_w, max_plausible_w]` filter.
    pub fn sample(
        &mut self,
        node: &Node,
        now: Nanos,
        min_plausible_w: f64,
        max_plausible_w: f64,
    ) -> Option<f64> {
        if self.units.is_none() {
            match node.msr().read(MSR_RAPL_POWER_UNIT) {
                Ok(raw) => self.units = Some(RaplUnits::decode(raw)),
                Err(_) => {
                    self.read_errors += 1;
                    return None;
                }
            }
        }
        let units = self.units?;
        let cur = match node.msr().read(MSR_PKG_ENERGY_STATUS) {
            Ok(v) => v,
            Err(_) => {
                self.read_errors += 1;
                return None;
            }
        };
        let prev = self.last.replace((now, cur));
        let (t0, c0) = prev?;
        if now <= t0 {
            return None;
        }
        let dt_s = (now - t0) as f64 / 1e9;
        // 32-bit wrap-aware delta.
        let ticks = cur.wrapping_sub(c0) & 0xFFFF_FFFF;
        let watts = ticks as f64 * units.energy_j / dt_s;
        if !(min_plausible_w..=max_plausible_w).contains(&watts) {
            self.implausible += 1;
            return None;
        }
        Some(watts)
    }
}

/// The hardened 1 Hz control loop. Drop-in replacement for
/// [`crate::daemon::NrmDaemon`] as a [`SimAgent`].
pub struct ResilientDaemon {
    schedule: Box<dyn CapSchedule>,
    cfg: ResilienceConfig,
    /// `[primary, fallbacks...]` in engagement order.
    chain: Vec<Actuator>,
    /// Index of the actuator currently in charge.
    active: usize,
    /// Consecutive failed primary attempts (drives the backoff).
    primary_failures: u32,
    /// Ticks until the primary is probed again while a fallback is active.
    primary_probe_in: u32,
    overshoot_streak: u32,
    healthy_streak: u32,
    safe_mode: bool,
    /// Last plausible power measurement, carried across sensor outages.
    last_power_w: f64,
    sensor: MsrPowerSensor,
    period: Nanos,
    start: Option<Nanos>,
    /// Observations, one per tick.
    pub samples: Vec<DaemonSample>,
}

impl ResilientDaemon {
    /// A hardened daemon applying `schedule`, preferring `primary` and
    /// degrading along `cfg.fallbacks`.
    pub fn new(
        schedule: Box<dyn CapSchedule>,
        primary: ActuatorKind,
        cfg: ResilienceConfig,
    ) -> Self {
        let mut chain = vec![Actuator::new(primary)];
        chain.extend(
            cfg.fallbacks
                .iter()
                .filter(|&&k| k != primary)
                .map(|&k| Actuator::new(k)),
        );
        Self {
            schedule,
            cfg,
            chain,
            active: 0,
            primary_failures: 0,
            primary_probe_in: 0,
            overshoot_streak: 0,
            healthy_streak: 0,
            safe_mode: false,
            last_power_w: 0.0,
            sensor: MsrPowerSensor::new(),
            period: SEC,
            start: None,
            samples: Vec::new(),
        }
    }

    /// Override the control period (tests).
    pub fn with_period(mut self, period: Nanos) -> Self {
        assert!(period > 0);
        self.period = period;
        self
    }

    /// The actuator currently in charge.
    pub fn active_kind(&self) -> ActuatorKind {
        self.chain[self.active].kind()
    }

    /// Whether the safe-mode floor is currently engaged.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    /// The power sensor (exposes read-error / implausibility counters).
    pub fn sensor(&self) -> &MsrPowerSensor {
        &self.sensor
    }

    /// The most recent observation, if the daemon has ticked at all.
    pub fn last_sample(&self) -> Option<&DaemonSample> {
        self.samples.last()
    }

    /// Attempt `chain[idx]` with immediate retries; returns
    /// `(succeeded, retries_spent, readback_verdict)`.
    fn attempt(
        &mut self,
        idx: usize,
        node: &mut Node,
        target: Option<f64>,
    ) -> (bool, u32, Option<bool>) {
        let mut retries = 0;
        for attempt in 0..=self.cfg.max_retries {
            retries = attempt;
            if self.chain[idx].apply(node, target).is_err() {
                continue;
            }
            // Write landed (or claims to have). For RAPL, verify the cap
            // actually holds the requested value.
            if self.cfg.readback && self.chain[idx].kind() == ActuatorKind::Rapl {
                match self.readback_cap(node, target) {
                    Some(true) => return (true, retries, Some(true)),
                    Some(false) => continue, // latched wrong: retry, then fall back
                    None => return (true, retries, None), // unverifiable: accept
                }
            }
            return (true, retries, None);
        }
        // All attempts failed (or read-back kept refuting them).
        let verdict = if self.cfg.readback && self.chain[idx].kind() == ActuatorKind::Rapl {
            self.readback_cap(node, target)
        } else {
            None
        };
        (false, retries, verdict)
    }

    /// Read `MSR_PKG_POWER_LIMIT` back and compare against the requested
    /// cap. `None` when the register (or the unit register) is unreadable.
    fn readback_cap(&mut self, node: &Node, target: Option<f64>) -> Option<bool> {
        if self.sensor.units.is_none() {
            self.sensor.units = node
                .msr()
                .read(MSR_RAPL_POWER_UNIT)
                .ok()
                .map(RaplUnits::decode);
        }
        let units = self.sensor.units?;
        let raw = node.msr().read(MSR_PKG_POWER_LIMIT).ok()?;
        let latched = PowerLimit::decode(raw, units).watts;
        Some(match (target, latched) {
            (None, None) => true,
            // 1/8 W quantization tolerance.
            (Some(t), Some(l)) => (t - l).abs() <= 0.25,
            _ => false,
        })
    }
}

impl SimAgent for ResilientDaemon {
    fn period(&self) -> Nanos {
        self.period
    }

    fn on_tick(&mut self, node: &mut Node, now: Nanos) {
        let start = *self.start.get_or_insert(now);
        let elapsed = now - start;
        let budget = self.schedule.cap_at(elapsed);

        // Measure through the MSR path, like a real daemon. Hold the last
        // plausible value across outages so control keeps a basis.
        let measured = self.sensor.sample(
            node,
            now,
            self.cfg.min_plausible_w,
            self.cfg.max_plausible_w,
        );
        if let Some(w) = measured {
            self.last_power_w = w;
        }

        // Safe mode pulls the target below the scheduled budget.
        let target = if self.safe_mode {
            budget.map(|b| (b - self.cfg.safe_margin_w).max(self.cfg.min_floor_w))
        } else {
            budget
        };

        // Decide the engagement order: normally the active actuator and
        // everything after it; when the backoff timer expires, probe the
        // primary first again.
        let probe_primary = self.active > 0 && self.primary_probe_in == 0;
        if self.active > 0 && self.primary_probe_in > 0 {
            self.primary_probe_in -= 1;
        }
        let mut order: Vec<usize> = Vec::with_capacity(self.chain.len());
        if probe_primary {
            order.push(0);
        }
        order.extend(self.active..self.chain.len());

        let mut total_retries = 0;
        let mut verified = None;
        let mut succeeded_at = None;
        for idx in order {
            let (ok, retries, verdict) = self.attempt(idx, node, target);
            total_retries += retries;
            if verdict.is_some() {
                verified = verdict;
            }
            if idx == 0 {
                if ok {
                    self.primary_failures = 0;
                } else {
                    self.primary_failures += 1;
                    self.primary_probe_in = crate::backoff::delay_after(
                        self.primary_failures,
                        self.cfg.backoff_cap_ticks,
                    );
                }
            }
            if ok {
                succeeded_at = Some(idx);
                break;
            }
        }
        let actuation_failed = succeeded_at.is_none();
        if let Some(idx) = succeeded_at {
            self.active = idx;
        }
        let fallback_used = self.active > 0 && !actuation_failed;

        // Budget-overshoot bookkeeping on the measured (user-space) power.
        if let Some(b) = budget {
            let w = measured.unwrap_or(self.last_power_w);
            if w > b + self.cfg.overshoot_tolerance_w {
                self.overshoot_streak += 1;
                self.healthy_streak = 0;
            } else {
                self.healthy_streak += 1;
                self.overshoot_streak = 0;
            }
            if self.overshoot_streak >= self.cfg.safe_mode_after {
                self.safe_mode = true;
            }
            if self.safe_mode && self.healthy_streak >= self.cfg.recover_after {
                self.safe_mode = false;
            }
        } else {
            // No budget, nothing to overshoot.
            self.overshoot_streak = 0;
            self.healthy_streak = 0;
            self.safe_mode = false;
        }

        self.samples.push(DaemonSample {
            at: now,
            cap_w: target,
            avg_power_w: measured.unwrap_or(self.last_power_w),
            actuation_failed,
            fallback_used,
            retries: total_retries,
            verified,
            safe_mode: self.safe_mode,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ConstantCap;
    use simnode::config::NodeConfig;
    use simnode::faults::{FaultPlan, FaultWindow};
    use simnode::hw::{IA32_CLOCK_MODULATION, IA32_PERF_CTL};
    use simnode::node::{CoreWork, Node, WorkPacket};

    fn busy_node(faults: Option<FaultPlan>) -> Node {
        let cfg = NodeConfig {
            faults: faults.map(std::sync::Arc::new),
            ..NodeConfig::default()
        };
        let mut node = Node::new(cfg);
        for c in 0..node.cores() {
            node.assign(
                c,
                CoreWork::Compute(
                    WorkPacket {
                        cycles: 3.3e9 * 600.0,
                        misses: 0.0,
                        instructions: 1e9,
                        mlp: 1.0,
                        mem_weight: 1.0,
                    }
                    .into(),
                ),
            );
        }
        node
    }

    fn run(daemon: &mut ResilientDaemon, node: &mut Node, seconds: u64) {
        let quanta = (SEC / node.config().quantum) as usize;
        for _ in 0..seconds {
            for _ in 0..quanta {
                node.step();
            }
            let now = node.now();
            daemon.on_tick(node, now);
        }
    }

    fn resilient(cap: f64) -> ResilientDaemon {
        ResilientDaemon::new(
            Box::new(ConstantCap(cap)),
            ActuatorKind::Rapl,
            ResilienceConfig::default(),
        )
    }

    #[test]
    fn fault_free_run_never_engages_the_machinery() {
        let mut node = busy_node(None);
        let mut d = resilient(90.0);
        run(&mut d, &mut node, 10);
        assert!(d.samples.iter().all(|s| !s.actuation_failed));
        assert!(d.samples.iter().all(|s| !s.fallback_used));
        assert!(d.samples.iter().all(|s| !s.safe_mode));
        assert!(d.samples.iter().all(|s| s.retries == 0));
        assert!(
            d.samples.iter().all(|s| s.verified != Some(false)),
            "read-back must confirm latched caps"
        );
        assert_eq!(d.active_kind(), ActuatorKind::Rapl);
        let p = node.average_power(2 * SEC);
        assert!((p - 90.0).abs() < 9.0, "settled near the cap, got {p:.1}");
    }

    #[test]
    fn write_failure_falls_back_to_dvfs_and_recovers() {
        // RAPL cap writes fail persistently between 2 s and 9 s.
        let plan = FaultPlan::new(3).write_error(
            MSR_PKG_POWER_LIMIT,
            1.0,
            FaultWindow::new(2 * SEC, 9 * SEC),
        );
        let mut node = busy_node(Some(plan));
        let mut d = resilient(90.0);
        run(&mut d, &mut node, 20);
        assert!(
            d.samples.iter().any(|s| s.fallback_used),
            "fallback actuator must engage during the fault"
        );
        assert!(
            d.samples.iter().any(|s| s.retries > 0),
            "failed writes must be retried"
        );
        // Well after the fault clears, the backoff probe restores RAPL.
        assert_eq!(d.active_kind(), ActuatorKind::Rapl, "primary recovered");
        let last = d.last_sample().expect("daemon ticked");
        assert!(!last.fallback_used && !last.actuation_failed);
    }

    #[test]
    fn delayed_latch_is_caught_by_readback() {
        // Cap writes report success but latch 10 s late: only read-back
        // verification can notice.
        let plan = FaultPlan::new(4).delayed_cap_latch(10 * SEC, FaultWindow::new(SEC, 6 * SEC));
        let mut node = busy_node(Some(plan));
        let mut d = resilient(90.0);
        run(&mut d, &mut node, 10);
        assert!(
            d.samples.iter().any(|s| s.verified == Some(false)),
            "read-back must detect the unlatched cap"
        );
        assert!(
            d.samples.iter().any(|s| s.fallback_used),
            "verification failure must drive fallback"
        );
    }

    #[test]
    fn all_actuators_dead_engages_safe_mode_then_recovers() {
        // Every knob write fails from 1 s to 8 s: power runs uncapped over
        // budget, safe mode must latch; after the fault clears, the floor
        // cap bites, measurements return to budget, safe mode disengages.
        let w = FaultWindow::new(SEC, 8 * SEC);
        let plan = FaultPlan::new(5)
            .write_error(MSR_PKG_POWER_LIMIT, 1.0, w)
            .write_error(IA32_PERF_CTL, 1.0, w)
            .write_error(IA32_CLOCK_MODULATION, 1.0, w);
        let mut node = busy_node(Some(plan));
        let mut d = resilient(80.0);
        run(&mut d, &mut node, 25);
        assert!(
            d.samples.iter().any(|s| s.actuation_failed),
            "ticks with every actuator dead must be recorded"
        );
        assert!(
            d.samples.iter().any(|s| s.safe_mode),
            "sustained overshoot must engage safe mode"
        );
        let last = d.last_sample().expect("daemon ticked");
        assert!(!last.safe_mode, "safe mode must disengage after recovery");
        assert_eq!(last.cap_w, Some(80.0), "scheduled cap restored");
        let p = node.average_power(2 * SEC);
        assert!(p < 90.0, "power back under control, got {p:.1}");
    }

    #[test]
    fn sensor_survives_counter_wrap_and_jump() {
        // Force an early 32-bit wrap mid-run: the wrap-aware delta must
        // not produce a plausibility spike for the natural wrap, and the
        // artificial jump must be filtered, not reported.
        let plan = FaultPlan::new(6).energy_jump(0xFFFF_FF00, FaultWindow::new(3 * SEC, 4 * SEC));
        let mut node = busy_node(Some(plan));
        let mut d = resilient(100.0);
        run(&mut d, &mut node, 12);
        assert!(d.sensor().implausible >= 1, "jump must be filtered");
        for s in &d.samples[1..] {
            assert!(
                s.avg_power_w < 400.0,
                "implausible power {:.0} W leaked into samples",
                s.avg_power_w
            );
        }
    }

    #[test]
    fn stuck_counter_holds_last_good_measurement() {
        let plan = FaultPlan::new(7).stuck_energy(FaultWindow::new(4 * SEC, 8 * SEC));
        let mut node = busy_node(Some(plan));
        let mut d = resilient(100.0);
        run(&mut d, &mut node, 12);
        // While stuck the delta is 0 ticks -> 0 W -> implausible.
        assert!(d.sensor().implausible >= 2, "stuck windows filtered");
        for s in &d.samples[2..] {
            assert!(
                s.avg_power_w > 20.0,
                "stuck counter must not read as ~0 W (got {:.1})",
                s.avg_power_w
            );
        }
        assert!(
            d.samples.iter().all(|s| !s.safe_mode),
            "a low-reading fault must not trip the overshoot logic"
        );
    }

    #[test]
    fn telemetry_dropout_does_not_destabilize_control() {
        let plan = FaultPlan::new(8).telemetry_dropout(FaultWindow::new(3 * SEC, 7 * SEC));
        let mut node = busy_node(Some(plan));
        let mut d = resilient(90.0);
        run(&mut d, &mut node, 14);
        assert!(d.sensor().read_errors > 0, "dropout must be visible");
        // Writes still work: the cap stays programmed and power capped.
        let p = node.average_power(2 * SEC);
        assert!((p - 90.0).abs() < 9.0, "cap held through dropout: {p:.1}");
        assert!(d.samples.iter().all(|s| !s.safe_mode));
    }
}
