//! # nrm — the node resource manager
//!
//! The paper's `power-policy` tool "runs as a background daemon on the
//! node. It monitors power usage and applies the selected dynamic
//! power-capping scheme on the package domain once every second" (§V.B).
//! This crate is that daemon, plus the pieces around it:
//!
//! - [`scheme`]: the three dynamic capping schedules of §V.B — linearly
//!   decreasing, step-function and jagged-edge — plus constants/uncapped;
//! - [`actuator`]: the control knobs: RAPL package caps, direct DVFS
//!   (used for the paper's Fig. 5 comparison) and DDCM-only;
//! - [`daemon`]: the 1 Hz control loop as a [`simnode::SimAgent`];
//! - [`policies`]: the paper's *envisioned* NRM policies (§II): pick the
//!   technique with the least predicted progress impact under a shrinking
//!   budget, using the `powermodel` predictor;
//! - [`composition`]: the future-work extension for Category-3
//!   applications — progress as a weighted combination of per-component
//!   progress (§VI.3).

pub mod actuator;
pub mod backoff;
pub mod composition;
pub mod daemon;
pub mod job;
pub mod policies;
pub mod resilience;
pub mod scheme;

pub use actuator::{Actuator, ActuatorKind};
pub use backoff::Backoff;
pub use composition::CompositeProgress;
pub use daemon::NrmDaemon;
pub use job::{JobPolicy, JobPowerManager, ManagedNode, NodeStatus};
pub use policies::{choose_strategy, ramp_plan, FreqPowerPoint, RateCurve, Strategy};
pub use resilience::{MsrPowerSensor, ResilienceConfig, ResilientDaemon};
pub use scheme::{
    CapSchedule, ConstantCap, JaggedEdge, LinearDecay, PriorityPreemption, StepFunction, Uncapped,
};
