//! Dynamic power-capping schedules (paper §V.B).
//!
//! A [`CapSchedule`] maps elapsed time since the daemon started to the
//! package cap to program: `None` means uncapped. The three dynamic
//! schemes are exactly the paper's:
//!
//! - **Linearly decreasing**: "initially, the power on the node is
//!   uncapped, and a linearly decreasing power cap is applied until a
//!   system or user-specified minimum value is reached."
//! - **Step-function**: "the power cap on the node alternates between an
//!   uncapped (or high value) and a low value."
//! - **Jagged-edge**: "the power cap on the node linearly decreases from
//!   an uncapped level to a low value and then goes back to an uncapped
//!   level quickly."

use simnode::time::Nanos;

/// A time-varying package-cap schedule.
pub trait CapSchedule: Send {
    /// Cap at `elapsed` nanoseconds since schedule start; `None` = uncapped.
    fn cap_at(&self, elapsed: Nanos) -> Option<f64>;
}

/// Never caps.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uncapped;

impl CapSchedule for Uncapped {
    fn cap_at(&self, _elapsed: Nanos) -> Option<f64> {
        None
    }
}

/// A fixed cap from t = 0.
#[derive(Debug, Clone, Copy)]
pub struct ConstantCap(pub f64);

impl CapSchedule for ConstantCap {
    fn cap_at(&self, _elapsed: Nanos) -> Option<f64> {
        Some(self.0)
    }
}

/// Uncapped for a lead-in, then a linear ramp from `from_w` down to
/// `to_w`, then held at `to_w`.
#[derive(Debug, Clone, Copy)]
pub struct LinearDecay {
    /// Uncapped lead-in.
    pub uncapped_for: Nanos,
    /// Cap at the start of the ramp, W.
    pub from_w: f64,
    /// Minimum cap, W.
    pub to_w: f64,
    /// Ramp duration.
    pub ramp: Nanos,
}

impl CapSchedule for LinearDecay {
    fn cap_at(&self, elapsed: Nanos) -> Option<f64> {
        if elapsed < self.uncapped_for {
            return None;
        }
        let into = elapsed - self.uncapped_for;
        if into >= self.ramp {
            return Some(self.to_w);
        }
        let frac = into as f64 / self.ramp as f64;
        Some(self.from_w + frac * (self.to_w - self.from_w))
    }
}

/// Alternates between a high level (possibly uncapped) and a low cap.
///
/// ```
/// use nrm::scheme::{CapSchedule, StepFunction};
/// use simnode::time::SEC;
///
/// let s = StepFunction::half_half(60.0, 20 * SEC);
/// assert_eq!(s.cap_at(5 * SEC), None);        // uncapped phase
/// assert_eq!(s.cap_at(15 * SEC), Some(60.0)); // capped phase
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StepFunction {
    /// High level; `None` = uncapped.
    pub high_w: Option<f64>,
    /// Low cap, W.
    pub low_w: f64,
    /// Full period (high phase + low phase).
    pub period: Nanos,
    /// Fraction of the period spent at the high level, in (0, 1).
    pub high_fraction: f64,
}

impl StepFunction {
    /// The paper's measurement shape: uncapped, then capped — half/half.
    pub fn half_half(low_w: f64, period: Nanos) -> Self {
        Self {
            high_w: None,
            low_w,
            period,
            high_fraction: 0.5,
        }
    }
}

impl CapSchedule for StepFunction {
    fn cap_at(&self, elapsed: Nanos) -> Option<f64> {
        let into = elapsed % self.period;
        let high_len = (self.period as f64 * self.high_fraction) as Nanos;
        if into < high_len {
            self.high_w
        } else {
            Some(self.low_w)
        }
    }
}

/// Sawtooth: from `high_w` (or uncapped at the very start of each tooth)
/// linearly down to `low_w` over `decay`, then instantly back up.
#[derive(Debug, Clone, Copy)]
pub struct JaggedEdge {
    /// Cap at the top of each tooth, W; `None` starts each tooth uncapped
    /// (the first schedule sample then reports no cap).
    pub high_w: f64,
    /// Cap at the bottom of each tooth, W.
    pub low_w: f64,
    /// Tooth duration.
    pub decay: Nanos,
}

impl CapSchedule for JaggedEdge {
    fn cap_at(&self, elapsed: Nanos) -> Option<f64> {
        let into = elapsed % self.decay;
        let frac = into as f64 / self.decay as f64;
        Some(self.high_w + frac * (self.low_w - self.high_w))
    }
}

/// The paper's second envisioned policy (§II): "a large, high-priority
/// job begins executing elsewhere on the system, and the power budget for
/// the currently executing low-priority job is reduced. The NRM responds
/// ... by implementing a hard, immediate power cap on the node."
#[derive(Debug, Clone, Copy)]
pub struct PriorityPreemption {
    /// When the high-priority job arrives (elapsed time).
    pub preempt_at: Nanos,
    /// Hard cap while preempted, W.
    pub hard_cap_w: f64,
    /// When the high-priority job departs; `None` = never.
    pub release_at: Option<Nanos>,
}

impl CapSchedule for PriorityPreemption {
    fn cap_at(&self, elapsed: Nanos) -> Option<f64> {
        if elapsed < self.preempt_at {
            return None;
        }
        match self.release_at {
            Some(r) if elapsed >= r => None,
            _ => Some(self.hard_cap_w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnode::time::SEC;

    #[test]
    fn linear_decay_shape() {
        let s = LinearDecay {
            uncapped_for: 10 * SEC,
            from_w: 150.0,
            to_w: 50.0,
            ramp: 100 * SEC,
        };
        assert_eq!(s.cap_at(0), None);
        assert_eq!(s.cap_at(9 * SEC), None);
        assert_eq!(s.cap_at(10 * SEC), Some(150.0));
        let mid = s.cap_at(60 * SEC).unwrap();
        assert!((mid - 100.0).abs() < 1e-9);
        assert_eq!(s.cap_at(200 * SEC), Some(50.0));
    }

    #[test]
    fn linear_decay_is_monotone_non_increasing() {
        let s = LinearDecay {
            uncapped_for: SEC,
            from_w: 140.0,
            to_w: 40.0,
            ramp: 50 * SEC,
        };
        let mut prev = f64::INFINITY;
        for t in (1..=60).map(|i| i * SEC) {
            if let Some(c) = s.cap_at(t) {
                assert!(c <= prev + 1e-9);
                prev = c;
            }
        }
    }

    #[test]
    fn step_function_alternates() {
        let s = StepFunction::half_half(60.0, 20 * SEC);
        assert_eq!(s.cap_at(0), None);
        assert_eq!(s.cap_at(9 * SEC), None);
        assert_eq!(s.cap_at(10 * SEC), Some(60.0));
        assert_eq!(s.cap_at(19 * SEC), Some(60.0));
        assert_eq!(s.cap_at(20 * SEC), None, "wraps to the high phase");
    }

    #[test]
    fn step_function_supports_high_low_pairs() {
        let s = StepFunction {
            high_w: Some(120.0),
            low_w: 60.0,
            period: 10 * SEC,
            high_fraction: 0.3,
        };
        assert_eq!(s.cap_at(SEC), Some(120.0));
        assert_eq!(s.cap_at(5 * SEC), Some(60.0));
    }

    #[test]
    fn jagged_edge_sawtooth_resets() {
        let s = JaggedEdge {
            high_w: 150.0,
            low_w: 50.0,
            decay: 30 * SEC,
        };
        assert_eq!(s.cap_at(0), Some(150.0));
        let near_bottom = s.cap_at(30 * SEC - 1).unwrap();
        assert!((near_bottom - 50.0).abs() < 1.0);
        // Instant snap back at the tooth boundary.
        assert_eq!(s.cap_at(30 * SEC), Some(150.0));
    }

    #[test]
    fn priority_preemption_is_a_hard_immediate_cap() {
        let s = PriorityPreemption {
            preempt_at: 30 * SEC,
            hard_cap_w: 55.0,
            release_at: Some(90 * SEC),
        };
        assert_eq!(s.cap_at(29 * SEC), None);
        assert_eq!(s.cap_at(30 * SEC), Some(55.0));
        assert_eq!(s.cap_at(89 * SEC), Some(55.0));
        assert_eq!(s.cap_at(90 * SEC), None, "budget restored on departure");
        let forever = PriorityPreemption {
            preempt_at: SEC,
            hard_cap_w: 55.0,
            release_at: None,
        };
        assert_eq!(forever.cap_at(1000 * SEC), Some(55.0));
    }

    #[test]
    fn schedules_are_object_safe() {
        let schedules: Vec<Box<dyn CapSchedule>> = vec![
            Box::new(Uncapped),
            Box::new(ConstantCap(80.0)),
            Box::new(StepFunction::half_half(60.0, 20 * SEC)),
        ];
        assert_eq!(schedules[1].cap_at(5 * SEC), Some(80.0));
    }
}
