//! Error metrics used in the paper's evaluation (§VI.2).
//!
//! The paper quotes per-cap percentage errors of the predicted change in
//! progress against the measured value ("the model predicts the impact ...
//! to within 13.3% of its experimentally observed value") and reports
//! whether the model over- or under-estimates. These helpers compute those
//! quantities uniformly for the Fig. 4 reproduction.

use serde::{Deserialize, Serialize};

/// Percentage error of `predicted` against `measured`, relative to the
/// measured value: `100 · (predicted − measured) / |measured|`.
/// Positive = overestimate, negative = underestimate.
///
/// Returns `f64::INFINITY`-free output: when `measured` is (near) zero the
/// error is reported against a small floor to keep tables printable, as is
/// conventional when the measured change vanishes.
pub fn pct_error(predicted: f64, measured: f64) -> f64 {
    let denom = measured.abs().max(1e-12);
    100.0 * (predicted - measured) / denom
}

/// Mean absolute percentage error over paired samples.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mean_absolute_pct_error(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "length mismatch");
    assert!(!predicted.is_empty(), "no samples");
    predicted
        .iter()
        .zip(measured)
        .map(|(&p, &m)| pct_error(p, m).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Direction of a model error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bias {
    /// Model predicts a larger impact than measured.
    Overestimate,
    /// Model predicts a smaller impact than measured.
    Underestimate,
    /// Within the tolerance band.
    Neutral,
}

/// Classify the bias of a prediction with a tolerance in percent.
pub fn bias(predicted: f64, measured: f64, tol_pct: f64) -> Bias {
    let e = pct_error(predicted, measured);
    if e > tol_pct {
        Bias::Overestimate
    } else if e < -tol_pct {
        Bias::Underestimate
    } else {
        Bias::Neutral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_error_direction() {
        assert!((pct_error(113.3, 100.0) - 13.3).abs() < 1e-9);
        assert!((pct_error(81.0, 100.0) + 19.0).abs() < 1e-9);
    }

    #[test]
    fn mape_averages_absolute_errors() {
        let e = mean_absolute_pct_error(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((e - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_measured_does_not_explode() {
        let e = pct_error(0.0, 0.0);
        assert!(e.is_finite());
        assert_eq!(e, 0.0);
    }

    #[test]
    fn bias_classification() {
        assert_eq!(bias(150.0, 100.0, 5.0), Bias::Overestimate);
        assert_eq!(bias(60.0, 100.0, 5.0), Bias::Underestimate);
        assert_eq!(bias(102.0, 100.0, 5.0), Bias::Neutral);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mape_rejects_mismatched_slices() {
        mean_absolute_pct_error(&[1.0], &[1.0, 2.0]);
    }
}
