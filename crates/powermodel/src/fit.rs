//! Fitting the α exponent from measured data.
//!
//! The paper fixes α = 2 but observes that "this value varies between 1
//! and 4 depending on the range of the power cap being applied" and
//! suggests parameterizing RAPL (§VI.3). This module implements that
//! future-work item: given measured `(P_corecap, Δprogress)` points and a
//! characterized application, find the α minimizing the sum of squared
//! prediction errors by golden-section search (the objective is smooth and
//! unimodal in α over the physical range).

use crate::predict::ProgressModel;

/// Physical search range for α, per the literature cited by the paper
/// (Yu et al.: 1 ≤ α ≤ 3) widened to the 1–4 band the paper observed.
pub const ALPHA_RANGE: (f64, f64) = (0.5, 4.5);

/// Sum of squared errors of the model with exponent `alpha` on the data.
fn sse(model: &ProgressModel, alpha: f64, data: &[(f64, f64)]) -> f64 {
    let m = ProgressModel { alpha, ..*model };
    data.iter()
        .map(|&(p_corecap, measured_delta)| {
            let d = m.predict_delta_at_corecap(p_corecap);
            (d - measured_delta) * (d - measured_delta)
        })
        .sum()
}

/// Fit α to measured `(P_corecap, Δprogress)` pairs, returning the best
/// exponent and its SSE.
///
/// # Panics
/// Panics if `data` is empty.
pub fn fit_alpha(model: &ProgressModel, data: &[(f64, f64)]) -> (f64, f64) {
    assert!(!data.is_empty(), "cannot fit alpha without data");
    let (mut lo, mut hi) = ALPHA_RANGE;
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = hi - phi * (hi - lo);
    let mut d = lo + phi * (hi - lo);
    let mut fc = sse(model, c, data);
    let mut fd = sse(model, d, data);
    for _ in 0..80 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - phi * (hi - lo);
            fc = sse(model, c, data);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + phi * (hi - lo);
            fd = sse(model, d, data);
        }
        if hi - lo < 1e-6 {
            break;
        }
    }
    let alpha = 0.5 * (lo + hi);
    (alpha, sse(model, alpha, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_data(model: &ProgressModel, alpha_true: f64, noise: f64) -> Vec<(f64, f64)> {
        let truth = ProgressModel {
            alpha: alpha_true,
            ..*model
        };
        (1..=10)
            .map(|i| {
                let p = model.p_coremax * i as f64 / 12.0;
                let mut d = truth.predict_delta_at_corecap(p);
                // Deterministic pseudo-noise, alternating sign.
                d *= 1.0 + noise * if i % 2 == 0 { 1.0 } else { -1.0 };
                (p, d)
            })
            .collect()
    }

    #[test]
    fn recovers_true_alpha_from_clean_data() {
        let m = ProgressModel::new(0.84, 2.0, 120.0, 16.0);
        for alpha_true in [1.2, 2.0, 3.0] {
            let data = synth_data(&m, alpha_true, 0.0);
            let (a, sse) = fit_alpha(&m, &data);
            assert!(
                (a - alpha_true).abs() < 1e-3,
                "true {alpha_true}, fitted {a}"
            );
            assert!(sse < 1e-9);
        }
    }

    #[test]
    fn tolerates_moderate_noise() {
        let m = ProgressModel::new(1.0, 2.0, 140.0, 1.0e6);
        let data = synth_data(&m, 2.5, 0.05);
        let (a, _) = fit_alpha(&m, &data);
        assert!((a - 2.5).abs() < 0.4, "fitted {a} too far from 2.5");
    }

    #[test]
    fn fitted_alpha_beats_paper_fixed_alpha_on_non_quadratic_data() {
        let m = ProgressModel::new(0.9, 2.0, 100.0, 10.0);
        let data = synth_data(&m, 3.2, 0.0);
        let (a, sse_fit) = fit_alpha(&m, &data);
        let sse_paper = super::sse(&m, 2.0, &data);
        assert!(sse_fit < sse_paper, "fit ({a}) should beat fixed α=2");
    }

    #[test]
    #[should_panic(expected = "without data")]
    fn empty_data_rejected() {
        let m = ProgressModel::new(0.5, 2.0, 100.0, 1.0);
        fit_alpha(&m, &[]);
    }
}
