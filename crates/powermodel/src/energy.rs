//! Energy-efficiency predictions derived from the progress model.
//!
//! The paper's motivation is performance under a power *budget*, but the
//! same model answers the energy question a power-constrained center pays
//! for: energy per unit of science. Under a package cap `P_cap`, the
//! package consumes `min(P_cap, P_uncapped)` watts while progressing at
//! `r(P_cap)` units/s (Eq. 4 via Eq. 5), so
//!
//! `E(P_cap) = min(P_cap, P_pkg) / r(P_cap)`  (joules per work unit).
//!
//! With α > 1, power falls faster than progress near the top of the
//! range, so mild caps *reduce* energy per unit — the classic
//! energy/performance trade the CANDLE extension experiment measures
//! empirically (`powerprog-core::experiments::candle_ext`).

use crate::predict::ProgressModel;

/// Energy per unit of progress under a package cap, J per work unit.
///
/// `pkg_uncapped_w` is the application's uncapped package draw (caps above
/// it change nothing).
///
/// # Panics
/// Panics if powers are non-positive.
pub fn energy_per_unit(model: &ProgressModel, pkg_uncapped_w: f64, p_cap: f64) -> f64 {
    assert!(
        pkg_uncapped_w > 0.0 && p_cap > 0.0,
        "powers must be positive"
    );
    let power = p_cap.min(pkg_uncapped_w);
    power / model.predict_rate(p_cap)
}

/// Find the cap minimizing predicted energy per unit, over a grid between
/// `min_cap` and the uncapped draw. Returns `(cap, energy_per_unit)`.
///
/// # Panics
/// Panics if the range is empty or non-positive.
pub fn most_efficient_cap(
    model: &ProgressModel,
    pkg_uncapped_w: f64,
    min_cap_w: f64,
) -> (f64, f64) {
    assert!(
        0.0 < min_cap_w && min_cap_w < pkg_uncapped_w,
        "bad cap range"
    );
    let mut best = (
        pkg_uncapped_w,
        energy_per_unit(model, pkg_uncapped_w, pkg_uncapped_w),
    );
    let steps = 200;
    for i in 0..=steps {
        let cap = min_cap_w + (pkg_uncapped_w - min_cap_w) * i as f64 / steps as f64;
        let e = energy_per_unit(model, pkg_uncapped_w, cap);
        if e < best.1 {
            best = (cap, e);
        }
    }
    best
}

/// Predicted energy-delay product (EDP) per unit of work under a cap:
/// `E/unit × time/unit = P / r²`. Lower is better; EDP penalizes slowdown
/// more than plain energy.
pub fn edp_per_unit(model: &ProgressModel, pkg_uncapped_w: f64, p_cap: f64) -> f64 {
    let r = model.predict_rate(p_cap);
    p_cap.min(pkg_uncapped_w) / (r * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::PAPER_ALPHA;

    fn candle_like() -> (ProgressModel, f64) {
        // β = 0.9, 150 W uncapped, 0.286 epochs/s.
        let pkg = 150.0;
        (
            ProgressModel::from_uncapped_run(0.9, PAPER_ALPHA, pkg, 0.286),
            pkg,
        )
    }

    #[test]
    fn mild_caps_reduce_energy_per_unit_for_alpha_above_one() {
        let (m, pkg) = candle_like();
        let uncapped = energy_per_unit(&m, pkg, pkg);
        let mild = energy_per_unit(&m, pkg, 110.0);
        assert!(
            mild < uncapped,
            "110 W cap should be more efficient: {mild:.1} vs {uncapped:.1} J/unit"
        );
    }

    #[test]
    fn caps_above_uncapped_draw_change_nothing() {
        let (m, pkg) = candle_like();
        let a = energy_per_unit(&m, pkg, pkg * 2.0);
        let b = energy_per_unit(&m, pkg, pkg);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn energy_per_unit_is_monotone_under_the_alpha2_model() {
        // Analytically, E(cap) ∝ β√(P_pkg·cap) + (1−β)·cap for α = 2 —
        // monotone increasing in the cap, so capping always saves energy
        // per unit and the optimum pins at the low end of the search
        // range. (The *empirical* CANDLE sweep shows the same monotone
        // trend; see `powerprog-core::experiments::candle_ext`.)
        let (m, pkg) = candle_like();
        let mut prev = 0.0;
        for cap in [40.0, 60.0, 80.0, 100.0, 120.0, 150.0] {
            let e = energy_per_unit(&m, pkg, cap);
            assert!(e > prev, "E/unit must rise with the cap");
            prev = e;
        }
        let (cap, e) = most_efficient_cap(&m, pkg, 40.0);
        assert!((cap - 40.0).abs() < 1e-9, "optimum pins at min cap: {cap}");
        assert!(e < energy_per_unit(&m, pkg, pkg));
    }

    #[test]
    fn edp_penalizes_deep_caps_more_than_energy() {
        let (m, pkg) = candle_like();
        // Going from 110 W to 60 W: energy may still fall, EDP must rise
        // faster (relative to its 110 W value) than energy does.
        let e_ratio = energy_per_unit(&m, pkg, 60.0) / energy_per_unit(&m, pkg, 110.0);
        let edp_ratio = edp_per_unit(&m, pkg, 60.0) / edp_per_unit(&m, pkg, 110.0);
        assert!(edp_ratio > e_ratio);
    }

    #[test]
    fn memory_bound_codes_always_save_energy_by_capping() {
        // β → 0: progress is cap-insensitive, so energy/unit ∝ cap.
        let pkg = 120.0;
        let m = ProgressModel::from_uncapped_run(0.05, PAPER_ALPHA, pkg, 16.0);
        let (cap, _) = most_efficient_cap(&m, pkg, 30.0);
        assert!(cap < 40.0, "optimum pinned at the low end: {cap:.0} W");
    }

    #[test]
    #[should_panic(expected = "bad cap range")]
    fn degenerate_range_rejected() {
        let (m, pkg) = candle_like();
        most_efficient_cap(&m, pkg, pkg + 10.0);
    }
}
