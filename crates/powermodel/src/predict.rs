//! The assembled progress-under-power-cap predictor.
//!
//! [`ProgressModel`] bundles an application's characterization (β, the
//! uncapped progress rate, the uncapped core power) with the model
//! parameter α, and answers the three questions the paper says the model
//! is for (§VI, opening bullets):
//!
//! 1. *predict* the impact of a package cap on progress (Eq. 7);
//! 2. *validate* assumptions about RAPL behaviour (via [`crate::fit`]);
//! 3. *decide the exact power budget* for a target progress rate — the
//!    inverse query, solved in closed form here.

use serde::{Deserialize, Serialize};

use crate::eqs::{eq4_progress_at_core_power, eq5_corecap, eq7_delta_progress};

/// The paper's fixed model exponent: "α is assumed to have a value of 2
/// for all model predictions" (§VI.2).
pub const PAPER_ALPHA: f64 = 2.0;

/// A characterized application + model parameters.
///
/// ```
/// use powermodel::predict::{ProgressModel, PAPER_ALPHA};
///
/// // QMCPACK-like: beta = 0.84, 148 W uncapped, 16 blocks/s.
/// let m = ProgressModel::from_uncapped_run(0.84, PAPER_ALPHA, 148.0, 16.0);
/// // Predict the progress under a 90 W package cap (Eqs. 5 + 4)...
/// let rate = m.predict_rate(90.0);
/// assert!(rate > 10.0 && rate < 16.0);
/// // ...and invert: which cap sustains 14 blocks/s?
/// let cap = m.required_cap_for_rate(14.0).unwrap();
/// assert!((m.predict_rate(cap) - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressModel {
    /// Compute-boundedness β ∈ [0, 1].
    pub beta: f64,
    /// Core power-law exponent α.
    pub alpha: f64,
    /// Core power at `f_max`, watts — the paper estimates it as
    /// `β · P_package(uncapped)` consistent with its Eq. (5) assumption.
    pub p_coremax: f64,
    /// Uncapped progress rate `r(P_coremax)`, in the app's metric units/s.
    pub r_max: f64,
}

impl ProgressModel {
    /// Build a model, validating parameter ranges.
    ///
    /// # Panics
    /// Panics on non-physical parameters.
    pub fn new(beta: f64, alpha: f64, p_coremax: f64, r_max: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta in [0,1]");
        assert!(alpha > 0.0, "alpha positive");
        assert!(p_coremax > 0.0, "p_coremax positive");
        assert!(r_max > 0.0, "r_max positive");
        Self {
            beta,
            alpha,
            p_coremax,
            r_max,
        }
    }

    /// Build from an uncapped characterization run: package power and
    /// progress rate, plus β. Uses the paper's `P_coremax = β · P_pkg`
    /// estimate (consistent with Eq. 5).
    pub fn from_uncapped_run(beta: f64, alpha: f64, pkg_power_uncapped: f64, r_max: f64) -> Self {
        Self::new(beta, alpha, (beta * pkg_power_uncapped).max(1e-6), r_max)
    }

    /// The effective core budget RAPL is assumed to allocate under a
    /// package cap (Eq. 5), clamped at `P_coremax` (caps above the
    /// uncapped draw change nothing).
    pub fn corecap(&self, p_cap: f64) -> f64 {
        eq5_corecap(self.beta, p_cap).min(self.p_coremax)
    }

    /// Predicted progress rate under a package cap (Eq. 4 after Eq. 5).
    pub fn predict_rate(&self, p_cap: f64) -> f64 {
        eq4_progress_at_core_power(
            self.r_max,
            self.beta,
            self.alpha,
            self.p_coremax,
            self.corecap(p_cap),
        )
    }

    /// Predicted progress rate at a given *core* power budget (Eq. 4).
    pub fn predict_rate_at_corecap(&self, p_corecap: f64) -> f64 {
        eq4_progress_at_core_power(
            self.r_max,
            self.beta,
            self.alpha,
            self.p_coremax,
            p_corecap.min(self.p_coremax),
        )
    }

    /// Predicted *change in progress* caused by applying a package cap
    /// from the uncapped state (Eq. 7).
    pub fn predict_delta(&self, p_cap: f64) -> f64 {
        eq7_delta_progress(
            self.r_max,
            self.beta,
            self.alpha,
            self.p_coremax,
            self.corecap(p_cap),
        )
    }

    /// Predicted change in progress at a given *core* budget (Eq. 7).
    pub fn predict_delta_at_corecap(&self, p_corecap: f64) -> f64 {
        eq7_delta_progress(
            self.r_max,
            self.beta,
            self.alpha,
            self.p_coremax,
            p_corecap.min(self.p_coremax),
        )
    }

    /// **Inverse query**: the smallest package cap that sustains a target
    /// progress rate, in watts — "be able to decide on the exact power
    /// budget to be employed given an expectation of online performance"
    /// (§VI). Returns `None` when the target exceeds `r_max` (no cap can
    /// speed the application up) and the uncapped-equivalent cap when the
    /// target equals `r_max`.
    ///
    /// Closed form: invert Eq. (4) for `P_corecap`, then Eq. (5) for
    /// `P_cap`. For β = 0 any cap works; the minimum cap is returned as 0.
    pub fn required_cap_for_rate(&self, target_rate: f64) -> Option<f64> {
        assert!(target_rate > 0.0, "target rate must be positive");
        if target_rate > self.r_max * (1.0 + 1e-12) {
            return None;
        }
        if self.beta == 0.0 {
            return Some(0.0);
        }
        // Eq. 4: r = r_max / (β((Pmax/Pc)^{1/α} − 1) + 1)
        // ⇒ (Pmax/Pc)^{1/α} = (r_max/r − 1)/β + 1
        let x = (self.r_max / target_rate - 1.0) / self.beta + 1.0;
        let p_corecap = self.p_coremax / x.powf(self.alpha);
        Some(p_corecap / self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lammps_like() -> ProgressModel {
        // β = 1.0, uncapped package 155 W, 1.08e6 atom-steps/s.
        ProgressModel::from_uncapped_run(1.0, PAPER_ALPHA, 155.0, 1.08e6)
    }

    #[test]
    fn caps_above_uncapped_power_are_no_ops() {
        let m = lammps_like();
        assert!((m.predict_rate(200.0) - m.r_max).abs() < 1e-9);
        assert!(m.predict_delta(200.0).abs() < 1e-9);
    }

    #[test]
    fn delta_grows_as_cap_shrinks() {
        let m = lammps_like();
        let mut prev = -1.0;
        for cap in [150.0, 120.0, 100.0, 80.0, 60.0, 40.0] {
            let d = m.predict_delta(cap);
            assert!(d > prev, "delta must grow as the cap tightens");
            prev = d;
        }
    }

    #[test]
    fn rate_plus_delta_equals_r_max() {
        let m = ProgressModel::new(0.84, 2.0, 120.0, 16.0);
        for cap in [60.0, 90.0, 130.0] {
            let s = m.predict_rate(cap) + m.predict_delta(cap);
            assert!((s - m.r_max).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_query_roundtrips() {
        let m = ProgressModel::new(0.84, 2.0, 120.0, 16.0);
        for cap in [50.0, 80.0, 110.0] {
            let rate = m.predict_rate(cap);
            let back = m.required_cap_for_rate(rate).unwrap();
            assert!(
                (back - cap).abs() < 1e-6,
                "cap {cap} → rate {rate} → cap {back}"
            );
        }
    }

    #[test]
    fn inverse_query_rejects_impossible_targets() {
        let m = lammps_like();
        assert!(m.required_cap_for_rate(m.r_max * 1.1).is_none());
    }

    #[test]
    fn memory_bound_inverse_query_is_zero_cap() {
        let m = ProgressModel::new(0.0, 2.0, 50.0, 10.0);
        assert_eq!(m.required_cap_for_rate(10.0), Some(0.0));
    }

    #[test]
    fn from_uncapped_run_applies_beta_split() {
        let m = ProgressModel::from_uncapped_run(0.37, 2.0, 119.0, 16.0);
        assert!((m.p_coremax - 0.37 * 119.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta in [0,1]")]
    fn invalid_beta_rejected() {
        ProgressModel::new(1.5, 2.0, 100.0, 1.0);
    }
}
