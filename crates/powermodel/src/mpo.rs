//! Misses Per Operation (MPO).
//!
//! MPO = `PAPI_L3_TCM / PAPI_TOT_INS` (paper §IV.A). Unlike β it is
//! frequency-independent, which the paper notes makes it the more reliable
//! characterization metric; a high MPO indicates a memory-bound code.

/// MPO from raw counter totals.
///
/// Returns 0 when no instructions were retired (an empty interval), rather
/// than NaN — monitoring code polls on a fixed period and must tolerate
/// idle windows.
pub fn mpo(l3_misses: f64, instructions: f64) -> f64 {
    assert!(
        l3_misses >= 0.0 && instructions >= 0.0,
        "counters are non-negative"
    );
    if instructions == 0.0 {
        0.0
    } else {
        l3_misses / instructions
    }
}

/// Classify per the paper's Table VI bands: MPO at or above this threshold
/// indicates a memory-bound application (AMG 30.1e-3 and STREAM 50.9e-3
/// sit above; LAMMPS 0.32e-3, OpenMC 0.20e-3 and QMCPACK 3.91e-3 below).
pub const MEMORY_BOUND_MPO: f64 = 10.0e-3;

/// True when the MPO indicates a memory-bound code.
pub fn is_memory_bound(mpo_value: f64) -> bool {
    mpo_value >= MEMORY_BOUND_MPO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpo_is_ratio() {
        assert!((mpo(3.0e6, 1.0e9) - 3.0e-3).abs() < 1e-15);
    }

    #[test]
    fn empty_interval_is_zero_not_nan() {
        assert_eq!(mpo(0.0, 0.0), 0.0);
    }

    #[test]
    fn paper_table_vi_classification() {
        assert!(!is_memory_bound(0.32e-3)); // LAMMPS
        assert!(!is_memory_bound(3.91e-3)); // QMCPACK
        assert!(is_memory_bound(30.1e-3)); // AMG
        assert!(is_memory_bound(50.9e-3)); // STREAM
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_counters_rejected() {
        mpo(-1.0, 10.0);
    }
}
