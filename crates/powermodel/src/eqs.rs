//! Equations (1)–(7) of the paper, verbatim.
//!
//! Notation follows the paper: `β` is compute-boundedness (1 = ideally
//! compute bound), `f_max` the nominal maximum frequency, `α` the exponent
//! of the core power law `P_core ∝ f^α` (between 1 and 3 in the cited
//! literature; the paper assumes 2), `P_coremax` the core power at `f_max`,
//! `r(·)` the progress rate.

/// **Eq. (1)** — impact of frequency scaling on execution time
/// (Etinski et al.): `T(f)/T(f_max) = β·(f_max/f − 1) + 1`.
///
/// # Panics
/// Panics unless `0 ≤ β ≤ 1` and both frequencies are positive.
pub fn eq1_time_ratio(beta: f64, f_max: f64, f: f64) -> f64 {
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    assert!(f_max > 0.0 && f > 0.0, "frequencies must be positive");
    beta * (f_max / f - 1.0) + 1.0
}

/// **Eq. (2)** — core power law: `P_core ∝ f^α`. Returns the frequency
/// ratio `f/f_max` implied by a core power ratio `P_core/P_coremax`.
pub fn eq2_freq_ratio_from_power(p_core: f64, p_coremax: f64, alpha: f64) -> f64 {
    assert!(p_core > 0.0 && p_coremax > 0.0, "powers must be positive");
    assert!(alpha > 0.0, "alpha must be positive");
    (p_core / p_coremax).powf(1.0 / alpha)
}

/// **Eq. (3)** — progress is inversely proportional to execution time:
/// given `r(f_max)` and the Eq. (1) time ratio, return `r(f)`.
pub fn eq3_progress_at_freq(r_max: f64, beta: f64, f_max: f64, f: f64) -> f64 {
    r_max / eq1_time_ratio(beta, f_max, f)
}

/// **Eq. (4)** — progress at a core power level, after the change of
/// variable through Eq. (2):
/// `r(P_core) = r(P_coremax) / (β·((P_coremax/P_core)^{1/α} − 1) + 1)`.
pub fn eq4_progress_at_core_power(
    r_max: f64,
    beta: f64,
    alpha: f64,
    p_coremax: f64,
    p_core: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    assert!(p_core > 0.0 && p_coremax > 0.0, "powers must be positive");
    assert!(alpha > 0.0, "alpha must be positive");
    r_max / (beta * ((p_coremax / p_core).powf(1.0 / alpha) - 1.0) + 1.0)
}

/// **Eq. (5)** — RAPL's assumed application-aware split: the effective
/// core budget under a package cap is `P_corecap = β · P_cap`.
pub fn eq5_corecap(beta: f64, p_cap: f64) -> f64 {
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    assert!(p_cap > 0.0, "cap must be positive");
    beta * p_cap
}

/// **Eq. (6)** — the core is assumed to consume its whole budget:
/// `P_core ≈ P_corecap`. Identity, kept for completeness/documentation.
pub fn eq6_core_power(p_corecap: f64) -> f64 {
    p_corecap
}

/// **Eq. (7)** — the model's headline output, the *change in progress*
/// when a core cap `P_corecap` is applied from the uncapped state:
/// `δ = r(P_coremax) · [1 − 1/(β·((P_coremax/P_corecap)^{1/α} − 1) + 1)]`.
pub fn eq7_delta_progress(
    r_max: f64,
    beta: f64,
    alpha: f64,
    p_coremax: f64,
    p_corecap: f64,
) -> f64 {
    r_max - eq4_progress_at_core_power(r_max, beta, alpha, p_coremax, p_corecap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_identity_at_fmax() {
        assert_eq!(eq1_time_ratio(0.7, 3300.0, 3300.0), 1.0);
    }

    #[test]
    fn eq1_pure_compute_scales_linearly_with_inverse_frequency() {
        // β = 1: halving frequency doubles time.
        let r = eq1_time_ratio(1.0, 3300.0, 1650.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_pure_memory_is_frequency_insensitive() {
        let r = eq1_time_ratio(0.0, 3300.0, 1200.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn eq1_matches_papers_stream_example() {
        // STREAM β = 0.37 at 1600 vs 3300 MHz → T ratio ≈ 1.393.
        let r = eq1_time_ratio(0.37, 3300.0, 1600.0);
        assert!((r - 1.3931).abs() < 1e-3, "got {r}");
    }

    #[test]
    fn eq2_alpha_two_is_square_root() {
        let ratio = eq2_freq_ratio_from_power(50.0, 100.0, 2.0);
        assert!((ratio - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn eq3_progress_halves_when_time_doubles() {
        let r = eq3_progress_at_freq(100.0, 1.0, 3300.0, 1650.0);
        assert!((r - 50.0).abs() < 1e-12);
    }

    #[test]
    fn eq4_uncapped_returns_r_max() {
        let r = eq4_progress_at_core_power(42.0, 0.8, 2.0, 110.0, 110.0);
        assert!((r - 42.0).abs() < 1e-12);
    }

    #[test]
    fn eq4_monotone_in_core_power() {
        let mut prev = 0.0;
        for p in [20.0, 40.0, 60.0, 80.0, 100.0] {
            let r = eq4_progress_at_core_power(1.0, 0.8, 2.0, 100.0, p);
            assert!(r > prev, "progress must increase with core power");
            prev = r;
        }
    }

    #[test]
    fn eq5_scales_cap_by_beta() {
        assert!((eq5_corecap(0.37, 100.0) - 37.0).abs() < 1e-12);
        assert_eq!(eq5_corecap(1.0, 80.0), 80.0);
    }

    #[test]
    fn eq7_is_r_max_minus_eq4() {
        let (r_max, beta, alpha, pmax, pcap) = (10.0, 0.84, 2.0, 120.0, 60.0);
        let d = eq7_delta_progress(r_max, beta, alpha, pmax, pcap);
        let r = eq4_progress_at_core_power(r_max, beta, alpha, pmax, pcap);
        assert!((d - (r_max - r)).abs() < 1e-12);
        assert!(d > 0.0 && d < r_max);
    }

    #[test]
    fn eq7_zero_at_uncapped_power() {
        assert!(eq7_delta_progress(10.0, 0.9, 2.0, 100.0, 100.0).abs() < 1e-12);
    }

    #[test]
    fn eq7_memory_bound_app_barely_affected() {
        // β → 0: capping the core should not change progress.
        let d = eq7_delta_progress(10.0, 0.0, 2.0, 100.0, 20.0);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn higher_alpha_predicts_smaller_impact() {
        // A higher α means frequency falls more slowly with power, so the
        // predicted progress loss shrinks.
        let d2 = eq7_delta_progress(1.0, 1.0, 2.0, 100.0, 50.0);
        let d3 = eq7_delta_progress(1.0, 1.0, 3.0, 100.0, 50.0);
        assert!(d3 < d2);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0,1]")]
    fn eq1_rejects_bad_beta() {
        eq1_time_ratio(1.2, 3300.0, 1600.0);
    }

    #[test]
    #[should_panic(expected = "powers must be positive")]
    fn eq4_rejects_zero_power() {
        eq4_progress_at_core_power(1.0, 0.5, 2.0, 100.0, 0.0);
    }
}
