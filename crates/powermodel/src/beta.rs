//! The β compute-boundedness metric.
//!
//! β ∈ [0, 1] measures how compute-bound an application is (Hsu & Kremer;
//! paper §IV.A). The paper computes it from execution times at the maximum
//! frequency (3300 MHz) and at 1600 MHz by inverting Eq. (1):
//!
//! `β = (T(f)/T(f_max) − 1) / (f_max/f − 1)`

/// Compute β from execution times at two frequencies (MHz).
///
/// `t_f` is the execution time at the reduced frequency `f_mhz`; `t_fmax`
/// the time at `fmax_mhz`. The result is clamped into [0, 1]: measurement
/// noise can push the raw value slightly outside the physical range (the
/// paper itself reports LAMMPS at exactly 1.00).
///
/// # Panics
/// Panics if times are non-positive or `f_mhz >= fmax_mhz`.
pub fn beta_from_times(t_f: f64, t_fmax: f64, f_mhz: f64, fmax_mhz: f64) -> f64 {
    assert!(t_f > 0.0 && t_fmax > 0.0, "times must be positive");
    assert!(
        f_mhz > 0.0 && f_mhz < fmax_mhz,
        "reduced frequency must be below fmax"
    );
    let raw = (t_f / t_fmax - 1.0) / (fmax_mhz / f_mhz - 1.0);
    raw.clamp(0.0, 1.0)
}

/// Compute β from *progress rates* instead of times (progress is
/// inversely proportional to time, paper Eq. (3)), which is how the
/// harness measures it online.
pub fn beta_from_rates(r_f: f64, r_fmax: f64, f_mhz: f64, fmax_mhz: f64) -> f64 {
    assert!(r_f > 0.0 && r_fmax > 0.0, "rates must be positive");
    beta_from_times(1.0 / r_f, 1.0 / r_fmax, f_mhz, fmax_mhz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqs::eq1_time_ratio;

    #[test]
    fn inverts_eq1_exactly() {
        for &b in &[0.0, 0.37, 0.52, 0.84, 1.0] {
            let ratio = eq1_time_ratio(b, 3300.0, 1600.0);
            let got = beta_from_times(ratio * 7.0, 7.0, 1600.0, 3300.0);
            assert!((got - b).abs() < 1e-12, "beta {b} roundtrip gave {got}");
        }
    }

    #[test]
    fn clamps_noise_outside_unit_interval() {
        // Time *decreasing* at lower frequency (impossible, i.e. noise).
        assert_eq!(beta_from_times(0.9, 1.0, 1600.0, 3300.0), 0.0);
        // Super-linear slowdown clamps to 1.
        assert_eq!(beta_from_times(10.0, 1.0, 1600.0, 3300.0), 1.0);
    }

    #[test]
    fn rates_and_times_agree() {
        let b_t = beta_from_times(1.4, 1.0, 1600.0, 3300.0);
        let b_r = beta_from_rates(1.0 / 1.4, 1.0, 1600.0, 3300.0);
        assert!((b_t - b_r).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below fmax")]
    fn rejects_inverted_frequencies() {
        beta_from_times(1.0, 1.0, 3300.0, 1600.0);
    }
}
