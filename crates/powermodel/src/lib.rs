//! # powermodel — the analytic model of power capping vs. progress
//!
//! Implements Section VI of Ramesh et al. (IPDPS-W 2019): a model of the
//! *change in application progress* caused by a RAPL package power cap,
//! built on the DVFS execution-time model of Etinski et al. (the paper's
//! Eq. 1) and the `P_core ∝ f^α` power law.
//!
//! Modules:
//! - [`eqs`]: Equations (1)–(7) as standalone functions;
//! - [`beta`]: the β compute-boundedness metric (Hsu & Kremer), measured
//!   from execution times at two frequencies exactly as the paper does
//!   (3300 vs. 1600 MHz, §IV.A);
//! - `mpo`: misses-per-operation;
//! - [`predict`]: [`predict::ProgressModel`], the assembled predictor,
//!   including the inverse query "what cap sustains a target progress?"
//!   that motivates the model (§VI bullets);
//! - [`fit`]: α estimation from measured (cap, Δprogress) points — the
//!   paper fixes α = 2 and flags fitting as future work;
//! - [`error`]: the error measures quoted in §VI.2;
//! - [`energy`]: energy-per-unit-of-science predictions derived from the
//!   model (the quantity behind the CANDLE extension experiment).

pub mod beta;
pub mod energy;
pub mod eqs;
pub mod error;
pub mod fit;
pub mod mpo;
pub mod predict;

pub use beta::beta_from_times;
pub use energy::{edp_per_unit, energy_per_unit, most_efficient_cap};
pub use error::{mean_absolute_pct_error, pct_error};
pub use fit::fit_alpha;
pub use mpo::mpo;
pub use predict::ProgressModel;

#[cfg(test)]
mod proptests;
