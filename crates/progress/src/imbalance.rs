//! Per-rank progress and load-imbalance analysis.
//!
//! The paper's future work: "transposing this notion of progress in order
//! to monitor it at a per-processing-element level" (§IV.B). When each
//! rank publishes its own progress channel, the per-rank rates expose the
//! load imbalance that whole-application metrics (and especially MIPS,
//! Table I) hide: the critical-path rank is the one doing the most work
//! per iteration, and the imbalance factor bounds the speedup available
//! to techniques like the DDCM rebalancing the paper cites
//! (Bhalachandra et al.).

use serde::{Deserialize, Serialize};

/// Summary of per-rank progress rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceReport {
    /// Per-rank work rates, units/s.
    pub rates: Vec<f64>,
    /// Rank doing the most work per unit time (the critical path in a
    /// bulk-synchronous code: everyone else waits for it).
    pub critical_rank: usize,
    /// max/min rate across ranks (1.0 = perfectly balanced).
    pub imbalance_factor: f64,
    /// Coefficient of variation of the per-rank rates.
    pub cv: f64,
    /// Fraction of aggregate capacity wasted waiting at barriers if every
    /// iteration synchronizes: `1 − mean/max`.
    pub wait_fraction: f64,
}

/// Analyze per-rank work rates.
///
/// # Panics
/// Panics if `rates` is empty or contains a negative value.
pub fn analyze(rates: &[f64]) -> ImbalanceReport {
    assert!(!rates.is_empty(), "need at least one rank");
    assert!(rates.iter().all(|&r| r >= 0.0), "rates are non-negative");
    let n = rates.len() as f64;
    let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = rates.iter().sum::<f64>() / n;
    let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
    let critical_rank = rates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0;
    ImbalanceReport {
        rates: rates.to_vec(),
        critical_rank,
        imbalance_factor: if min > 0.0 { max / min } else { f64::INFINITY },
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        wait_fraction: if max > 0.0 { 1.0 - mean / max } else { 0.0 },
    }
}

impl ImbalanceReport {
    /// Whether the workload is effectively balanced (within `tol`
    /// relative spread).
    pub fn is_balanced(&self, tol: f64) -> bool {
        self.imbalance_factor.is_finite() && self.imbalance_factor <= 1.0 + tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ranks_report_unit_factor() {
        let r = analyze(&[10.0, 10.0, 10.0, 10.0]);
        assert!(r.is_balanced(0.01));
        assert_eq!(r.imbalance_factor, 1.0);
        assert_eq!(r.wait_fraction, 0.0);
        assert_eq!(r.cv, 0.0);
    }

    #[test]
    fn listing1_unequal_shape_detected() {
        // Rank r does (r+1)/n of the critical work per iteration.
        let n = 24usize;
        let rates: Vec<f64> = (0..n).map(|r| (r + 1) as f64 / n as f64 * 1e6).collect();
        let rep = analyze(&rates);
        assert_eq!(rep.critical_rank, n - 1);
        assert!((rep.imbalance_factor - 24.0).abs() < 1e-9);
        // mean = (n+1)/2n of max → wait fraction ≈ 1 − 25/48.
        assert!((rep.wait_fraction - (1.0 - 25.0 / 48.0)).abs() < 1e-9);
        assert!(!rep.is_balanced(0.1));
    }

    #[test]
    fn idle_rank_yields_infinite_factor() {
        let rep = analyze(&[0.0, 5.0]);
        assert!(rep.imbalance_factor.is_infinite());
        assert!(!rep.is_balanced(10.0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_input_rejected() {
        analyze(&[]);
    }
}
