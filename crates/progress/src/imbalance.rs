//! Per-rank progress and load-imbalance analysis.
//!
//! The paper's future work: "transposing this notion of progress in order
//! to monitor it at a per-processing-element level" (§IV.B). When each
//! rank publishes its own progress channel, the per-rank rates expose the
//! load imbalance that whole-application metrics (and especially MIPS,
//! Table I) hide: the critical-path rank is the one doing the most work
//! per iteration, and the imbalance factor bounds the speedup available
//! to techniques like the DDCM rebalancing the paper cites
//! (Bhalachandra et al.).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Why a set of per-rank rates could not be analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImbalanceError {
    /// No ranks were supplied.
    Empty,
    /// The rate at the given rank is negative or NaN.
    InvalidRate(usize),
}

impl fmt::Display for ImbalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImbalanceError::Empty => write!(f, "need at least one rank"),
            ImbalanceError::InvalidRate(rank) => {
                write!(f, "rank {rank} has a negative or NaN rate")
            }
        }
    }
}

impl std::error::Error for ImbalanceError {}

/// Summary of per-rank progress rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceReport {
    /// Per-rank work rates, units/s.
    pub rates: Vec<f64>,
    /// Rank doing the most work per unit time (the critical path in a
    /// bulk-synchronous code: everyone else waits for it).
    pub critical_rank: usize,
    /// max/min rate across ranks (1.0 = perfectly balanced).
    pub imbalance_factor: f64,
    /// Coefficient of variation of the per-rank rates.
    pub cv: f64,
    /// Fraction of aggregate capacity wasted waiting at barriers if every
    /// iteration synchronizes: `1 − mean/max`.
    pub wait_fraction: f64,
}

/// Analyze per-rank work rates.
///
/// # Errors
/// Returns [`ImbalanceError::Empty`] for an empty slice and
/// [`ImbalanceError::InvalidRate`] when a rate is negative or NaN.
pub fn analyze(rates: &[f64]) -> Result<ImbalanceReport, ImbalanceError> {
    if rates.is_empty() {
        return Err(ImbalanceError::Empty);
    }
    if let Some(bad) = rates.iter().position(|r| r.is_nan() || *r < 0.0) {
        return Err(ImbalanceError::InvalidRate(bad));
    }
    let n = rates.len() as f64;
    let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = rates.iter().sum::<f64>() / n;
    let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
    let critical_rank = rates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0;
    Ok(ImbalanceReport {
        rates: rates.to_vec(),
        critical_rank,
        imbalance_factor: if min > 0.0 { max / min } else { f64::INFINITY },
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        wait_fraction: if max > 0.0 { 1.0 - mean / max } else { 0.0 },
    })
}

impl ImbalanceReport {
    /// Whether the workload is effectively balanced (within `tol`
    /// relative spread).
    pub fn is_balanced(&self, tol: f64) -> bool {
        self.imbalance_factor.is_finite() && self.imbalance_factor <= 1.0 + tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ranks_report_unit_factor() {
        let r = analyze(&[10.0, 10.0, 10.0, 10.0]).unwrap();
        assert!(r.is_balanced(0.01));
        assert_eq!(r.imbalance_factor, 1.0);
        assert_eq!(r.wait_fraction, 0.0);
        assert_eq!(r.cv, 0.0);
    }

    #[test]
    fn listing1_unequal_shape_detected() {
        // Rank r does (r+1)/n of the critical work per iteration.
        let n = 24usize;
        let rates: Vec<f64> = (0..n).map(|r| (r + 1) as f64 / n as f64 * 1e6).collect();
        let rep = analyze(&rates).unwrap();
        assert_eq!(rep.critical_rank, n - 1);
        assert!((rep.imbalance_factor - 24.0).abs() < 1e-9);
        // mean = (n+1)/2n of max → wait fraction ≈ 1 − 25/48.
        assert!((rep.wait_fraction - (1.0 - 25.0 / 48.0)).abs() < 1e-9);
        assert!(!rep.is_balanced(0.1));
    }

    #[test]
    fn idle_rank_yields_infinite_factor() {
        let rep = analyze(&[0.0, 5.0]).unwrap();
        assert!(rep.imbalance_factor.is_infinite());
        assert!(!rep.is_balanced(10.0));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(analyze(&[]), Err(ImbalanceError::Empty));
    }

    #[test]
    fn negative_and_nan_rates_rejected_with_rank() {
        assert_eq!(
            analyze(&[1.0, -2.0, 3.0]),
            Err(ImbalanceError::InvalidRate(1))
        );
        assert_eq!(
            analyze(&[1.0, 2.0, f64::NAN]),
            Err(ImbalanceError::InvalidRate(2))
        );
        assert!(ImbalanceError::InvalidRate(2)
            .to_string()
            .contains("rank 2"));
    }
}
