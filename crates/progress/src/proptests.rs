//! Property-based tests for the monitoring layer.

#![cfg(test)]

use proptest::prelude::*;

use crate::aggregator::{ProgressAggregator, WindowStats};
use crate::bus::{BusConfig, DropPolicy, ProgressBus};
use crate::series::TimeSeries;
use crate::watchdog::{Health, ProgressWatchdog, WatchdogConfig};

proptest! {
    /// Lossless aggregation conserves work: the sum of window rates (over
    /// 1 s windows) equals the sum of published values, for any
    /// time-ordered event pattern.
    #[test]
    fn aggregation_conserves_work(
        events in prop::collection::vec((0u64..60_000_000_000, 0.1f64..100.0), 1..200),
    ) {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        let agg = ProgressAggregator::new(sub, 1_000_000_000, None);
        let mut total = 0.0;
        for &(at, v) in &sorted {
            p.publish(at, v);
            total += v;
        }
        let end = sorted.last().unwrap().0 + 1;
        let series = agg.finish(end);
        let windowed: f64 = series.v.iter().sum();
        prop_assert!(
            (windowed - total).abs() <= 1e-9 * total.max(1.0),
            "windowed {windowed} vs published {total}"
        );
    }

    /// A bounded queue never holds more than its capacity, regardless of
    /// publish/drain interleaving, and drop counts are exact.
    #[test]
    fn lossy_queue_respects_capacity(
        capacity in 1usize..32,
        bursts in prop::collection::vec(1usize..50, 1..20),
        drop_newest in any::<bool>(),
    ) {
        let policy = if drop_newest { DropPolicy::DropNewest } else { DropPolicy::DropOldest };
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(capacity, policy));
        let p = bus.publisher();
        let mut t = 0u64;
        let mut published = 0u64;
        let mut received = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                t += 1;
                p.publish(t, 1.0);
                published += 1;
            }
            let got = sub.drain();
            prop_assert!(got.len() <= capacity);
            received += got.len() as u64;
        }
        received += sub.drain().len() as u64;
        prop_assert_eq!(received + bus.dropped(), published);
    }

    /// Series statistics are scale-consistent: scaling every value by k
    /// scales mean/std/min/max by k and leaves CV unchanged.
    #[test]
    fn series_statistics_scale(
        vals in prop::collection::vec(0.1f64..1000.0, 2..100),
        k in 0.1f64..100.0,
    ) {
        let s: TimeSeries = vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let scaled: TimeSeries = vals.iter().enumerate().map(|(i, &v)| (i as f64, v * k)).collect();
        prop_assert!((scaled.mean() - k * s.mean()).abs() <= 1e-9 * k * s.mean().abs().max(1.0));
        prop_assert!((scaled.std() - k * s.std()).abs() <= 1e-6 * (k * s.std()).abs().max(1.0));
        prop_assert!((scaled.cv() - s.cv()).abs() <= 1e-9);
    }

    /// `mean_between` over the whole span equals `mean`.
    #[test]
    fn mean_between_full_span_is_mean(vals in prop::collection::vec(-50.0f64..50.0, 1..60)) {
        let s: TimeSeries = vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let full = s.mean_between(-1.0, vals.len() as f64 + 1.0);
        prop_assert!((full - s.mean()).abs() < 1e-9);
    }

    /// Drained events from a lossy queue are always a time-ordered
    /// subsequence of what was published: DropNewest keeps the earliest
    /// queued prefix, DropOldest the latest suffix, and neither ever
    /// reorders or duplicates.
    #[test]
    fn lossy_drain_is_an_ordered_subsequence(
        capacity in 1usize..16,
        n in 1u64..200,
        drop_newest in any::<bool>(),
    ) {
        let policy = if drop_newest { DropPolicy::DropNewest } else { DropPolicy::DropOldest };
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(capacity, policy));
        let p = bus.publisher();
        for i in 0..n {
            p.publish(i, i as f64);
        }
        let got = sub.drain();
        prop_assert!(got.len() <= capacity);
        prop_assert!(got.windows(2).all(|w| w[0].at < w[1].at), "reordered");
        match policy {
            DropPolicy::DropNewest => {
                // Earliest events survive: 0, 1, 2, ...
                for (i, ev) in got.iter().enumerate() {
                    prop_assert_eq!(ev.at, i as u64);
                }
            }
            DropPolicy::DropOldest => {
                // Latest events survive: ..., n-2, n-1.
                for (i, ev) in got.iter().rev().enumerate() {
                    prop_assert_eq!(ev.at, n - 1 - i as u64);
                }
            }
        }
    }

    /// Full-queue churn across threads never deadlocks, never exceeds
    /// capacity on any drain, and the delivered + dropped accounting is
    /// exact once the publishers finish.
    #[test]
    fn lossy_churn_under_threads_is_lock_safe_and_exact(
        capacity in 1usize..8,
        per_thread in 50u64..300,
        drop_newest in any::<bool>(),
    ) {
        let policy = if drop_newest { DropPolicy::DropNewest } else { DropPolicy::DropOldest };
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(capacity, policy));
        let publishers: Vec<_> = (0..3).map(|_| bus.publisher()).collect();
        let mut received = 0u64;
        let handles: Vec<_> = publishers
            .into_iter()
            .map(|p| {
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        p.publish(i, 1.0);
                    }
                })
            })
            .collect();
        // Drain concurrently while the publishers hammer the full queue.
        for _ in 0..50 {
            let got = sub.drain();
            prop_assert!(got.len() <= capacity, "capacity exceeded mid-churn");
            received += got.len() as u64;
        }
        for h in handles {
            h.join().unwrap();
        }
        received += sub.drain().len() as u64;
        prop_assert_eq!(received + bus.dropped(), 3 * per_thread);
    }

    /// A lossless subscriber on the same bus is untouched by a lossy
    /// sibling's drops: per-subscriber queues are independent.
    #[test]
    fn lossy_sibling_does_not_lose_lossless_events(
        capacity in 1usize..8,
        n in 1u64..200,
    ) {
        let bus = ProgressBus::new();
        let mut lossless = bus.subscribe(BusConfig::lossless());
        let mut lossy = bus.subscribe(BusConfig::lossy(capacity, DropPolicy::DropNewest));
        let p = bus.publisher();
        for i in 0..n {
            p.publish(i, 1.0);
        }
        prop_assert_eq!(lossless.drain().len() as u64, n);
        prop_assert!(lossy.drain().len() <= capacity);
    }

    /// Watchdog soundness: a `Stalled` verdict is only ever reached after
    /// `stall_after` consecutive observations that were empty AND carried
    /// no new transport drops — regardless of the input pattern.
    #[test]
    fn watchdog_never_calls_a_live_source_stalled(
        pattern in prop::collection::vec((0usize..3, 0u64..3), 1..80),
    ) {
        let cfg = WatchdogConfig::default();
        let mut wd = ProgressWatchdog::new(cfg);
        let mut drops = 0u64;
        let mut quiet = 0u32;
        for &(events, new_drops) in &pattern {
            drops += new_drops;
            let h = wd.observe(
                &WindowStats { start: 0, events, sum: events as f64 },
                drops,
            );
            if events > 0 || new_drops > 0 {
                quiet = 0;
            } else {
                quiet += 1;
            }
            prop_assert_eq!(
                h == Health::Stalled,
                quiet >= cfg.stall_after,
                "verdict {:?} after {} loss-free quiet windows", h, quiet
            );
        }
    }
}

#[test]
fn aggregation_conserves_work_exact() {
    // Deterministic exact version of the conservation property.
    let bus = ProgressBus::new();
    let sub = bus.subscribe(BusConfig::lossless());
    let p = bus.publisher();
    let agg = ProgressAggregator::new(sub, 1_000_000_000, None);
    let mut total = 0.0;
    let mut t = 0u64;
    for i in 0..500u64 {
        t += 37_000_000 + (i % 13) * 91_000_000;
        let v = 1.0 + (i % 7) as f64;
        p.publish(t, v);
        total += v;
    }
    let series = agg.finish(t + 1);
    let windowed: f64 = series.v.iter().sum();
    assert!(
        (windowed - total).abs() < 1e-9,
        "windowed {windowed} vs published {total}"
    );
}
