//! Property-based tests for the monitoring layer.

#![cfg(test)]

use proptest::prelude::*;

use crate::aggregator::ProgressAggregator;
use crate::bus::{BusConfig, DropPolicy, ProgressBus};
use crate::series::TimeSeries;

proptest! {
    /// Lossless aggregation conserves work: the sum of window rates (over
    /// 1 s windows) equals the sum of published values, for any
    /// time-ordered event pattern.
    #[test]
    fn aggregation_conserves_work(
        events in prop::collection::vec((0u64..60_000_000_000, 0.1f64..100.0), 1..200),
    ) {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        let agg = ProgressAggregator::new(sub, 1_000_000_000, None);
        let mut total = 0.0;
        for &(at, v) in &sorted {
            p.publish(at, v);
            total += v;
        }
        let end = sorted.last().unwrap().0 + 1;
        let series = agg.finish(end);
        let windowed: f64 = series.v.iter().sum();
        prop_assert!(
            (windowed - total).abs() <= 1e-9 * total.max(1.0),
            "windowed {windowed} vs published {total}"
        );
    }

    /// A bounded queue never holds more than its capacity, regardless of
    /// publish/drain interleaving, and drop counts are exact.
    #[test]
    fn lossy_queue_respects_capacity(
        capacity in 1usize..32,
        bursts in prop::collection::vec(1usize..50, 1..20),
        drop_newest in any::<bool>(),
    ) {
        let policy = if drop_newest { DropPolicy::DropNewest } else { DropPolicy::DropOldest };
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(capacity, policy));
        let p = bus.publisher();
        let mut t = 0u64;
        let mut published = 0u64;
        let mut received = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                t += 1;
                p.publish(t, 1.0);
                published += 1;
            }
            let got = sub.drain();
            prop_assert!(got.len() <= capacity);
            received += got.len() as u64;
        }
        received += sub.drain().len() as u64;
        prop_assert_eq!(received + bus.dropped(), published);
    }

    /// Series statistics are scale-consistent: scaling every value by k
    /// scales mean/std/min/max by k and leaves CV unchanged.
    #[test]
    fn series_statistics_scale(
        vals in prop::collection::vec(0.1f64..1000.0, 2..100),
        k in 0.1f64..100.0,
    ) {
        let s: TimeSeries = vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let scaled: TimeSeries = vals.iter().enumerate().map(|(i, &v)| (i as f64, v * k)).collect();
        prop_assert!((scaled.mean() - k * s.mean()).abs() <= 1e-9 * k * s.mean().abs().max(1.0));
        prop_assert!((scaled.std() - k * s.std()).abs() <= 1e-6 * (k * s.std()).abs().max(1.0));
        prop_assert!((scaled.cv() - s.cv()).abs() <= 1e-9);
    }

    /// `mean_between` over the whole span equals `mean`.
    #[test]
    fn mean_between_full_span_is_mean(vals in prop::collection::vec(-50.0f64..50.0, 1..60)) {
        let s: TimeSeries = vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let full = s.mean_between(-1.0, vals.len() as f64 + 1.0);
        prop_assert!((full - s.mean()).abs() < 1e-9);
    }
}

#[test]
fn aggregation_conserves_work_exact() {
    // Deterministic exact version of the conservation property.
    let bus = ProgressBus::new();
    let sub = bus.subscribe(BusConfig::lossless());
    let p = bus.publisher();
    let agg = ProgressAggregator::new(sub, 1_000_000_000, None);
    let mut total = 0.0;
    let mut t = 0u64;
    for i in 0..500u64 {
        t += 37_000_000 + (i % 13) * 91_000_000;
        let v = 1.0 + (i % 7) as f64;
        p.publish(t, v);
        total += v;
    }
    let series = agg.finish(t + 1);
    let windowed: f64 = series.v.iter().sum();
    assert!(
        (windowed - total).abs() < 1e-9,
        "windowed {windowed} vs published {total}"
    );
}
