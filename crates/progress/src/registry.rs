//! The application registry: Tables II, IV, V and VI of the paper as data.
//!
//! Each [`AppRecord`] carries the application description (Table II), the
//! specialist-interview answers (Table IV), the category and online
//! performance metric (Table V), and — where the paper measured them — the
//! published β and MPO characterization values (Table VI) used to calibrate
//! the proxy workloads in the `proxyapps` crate.

use crate::event::MetricDesc;
use crate::taxonomy::{Category, InterviewAnswers, ResourceBound};

/// Everything the paper records about one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRecord {
    /// Application name as the paper spells it.
    pub name: &'static str,
    /// Table II description.
    pub description: &'static str,
    /// Table V category; CANDLE is listed as "1/2", hence a slice.
    pub categories: &'static [Category],
    /// Table V online performance metric, if one exists.
    pub metric: Option<MetricDesc>,
    /// Table IV questionnaire answers.
    pub answers: InterviewAnswers,
    /// Table VI β (compute-boundedness), where published.
    pub beta_paper: Option<f64>,
    /// Table VI MPO (L3 misses per instruction), where published.
    pub mpo_paper: Option<f64>,
}

impl AppRecord {
    /// Primary category (first listed).
    pub fn primary_category(&self) -> Category {
        self.categories[0]
    }
}

const Y: Option<bool> = Some(true);
const N: Option<bool> = Some(false);
const BLANK: Option<bool> = None;

static REGISTRY: [AppRecord; 9] = [
    AppRecord {
        name: "QMCPACK",
        description: "Monte Carlo quantum chemistry code that samples particle positions \
                      randomly. Phased application.",
        categories: &[Category::One],
        metric: Some(MetricDesc::new("blocks per second", "blocks")),
        answers: InterviewAnswers {
            has_fom: Y,
            measurable_online: Y,
            relates_to_science: Y,
            predictable_time: Y,
            iterations_known: Y,
            uniform_iterations: Y,
            phased: Y,
            bound: ResourceBound::Compute,
        },
        beta_paper: Some(0.84),
        mpo_paper: Some(3.91e-3),
    },
    AppRecord {
        name: "OpenMC",
        description: "Monte Carlo neutron transport code that simulates particle movement \
                      inside nuclear reactor. Phased application.",
        categories: &[Category::One],
        metric: Some(MetricDesc::new("particles per second", "particles")),
        answers: InterviewAnswers {
            has_fom: N,
            measurable_online: Y,
            relates_to_science: Y,
            predictable_time: Y,
            iterations_known: Y,
            uniform_iterations: Y,
            phased: Y,
            bound: ResourceBound::MemoryLatency,
        },
        beta_paper: Some(0.93),
        mpo_paper: Some(0.20e-3),
    },
    AppRecord {
        name: "AMG",
        description: "Iterative solver benchmark that uses algebraic multigrid \
                      preconditioning. Only the solve phase is important for performance.",
        categories: &[Category::Two],
        metric: Some(MetricDesc::new(
            "conjugate gradient iterations per second",
            "iterations",
        )),
        answers: InterviewAnswers {
            has_fom: N,
            measurable_online: Y,
            relates_to_science: N,
            predictable_time: N,
            iterations_known: N,
            uniform_iterations: Y,
            phased: N,
            bound: ResourceBound::MemoryBandwidth,
        },
        beta_paper: Some(0.52),
        mpo_paper: Some(30.1e-3),
    },
    AppRecord {
        name: "LAMMPS",
        description: "Molecular dynamics package that uses N-body simulation techniques. \
                      No detected phases in the application.",
        categories: &[Category::One],
        metric: Some(MetricDesc::new(
            "atom timesteps per second",
            "atom timesteps",
        )),
        answers: InterviewAnswers {
            has_fom: N,
            measurable_online: Y,
            relates_to_science: Y,
            predictable_time: Y,
            iterations_known: Y,
            uniform_iterations: Y,
            phased: N,
            bound: ResourceBound::Compute,
        },
        beta_paper: Some(1.00),
        mpo_paper: Some(0.32e-3),
    },
    AppRecord {
        name: "CANDLE",
        description: "Deep Learning based cancer suite. Benchmark code that uses TensorFlow \
                      to solve problems related to precision medicine for cancer.",
        categories: &[Category::One, Category::Two],
        metric: Some(MetricDesc::new(
            "epochs per second (training phase)",
            "epochs",
        )),
        answers: InterviewAnswers {
            has_fom: N,
            measurable_online: Y,
            relates_to_science: N,
            predictable_time: N,
            iterations_known: N,
            uniform_iterations: Y,
            phased: Y,
            bound: ResourceBound::Compute,
        },
        beta_paper: None,
        mpo_paper: None,
    },
    AppRecord {
        name: "STREAM",
        description: "Memory bandwidth benchmark designed to stress-test the memory \
                      subsystem.",
        categories: &[Category::One],
        metric: Some(MetricDesc::new("iterations per second", "iterations")),
        answers: InterviewAnswers {
            has_fom: Y,
            measurable_online: Y,
            relates_to_science: Y,
            predictable_time: Y,
            iterations_known: Y,
            uniform_iterations: Y,
            phased: N,
            bound: ResourceBound::MemoryBandwidth,
        },
        beta_paper: Some(0.37),
        mpo_paper: Some(50.9e-3),
    },
    AppRecord {
        name: "URBAN",
        description: "Collection of applications for modeling and simulation of city \
                      infrastructure and transport mechanisms. Multiphysics application \
                      where individual components run at different timescales.",
        categories: &[Category::Three],
        metric: None,
        answers: InterviewAnswers {
            has_fom: N,
            measurable_online: N,
            relates_to_science: BLANK,
            predictable_time: N,
            iterations_known: BLANK,
            uniform_iterations: N,
            phased: Y,
            bound: ResourceBound::ComponentDependent,
        },
        beta_paper: None,
        mpo_paper: None,
    },
    AppRecord {
        name: "Nek5000",
        description: "Computational fluid dynamics library that is a part of larger \
                      applications.",
        categories: &[Category::Three],
        metric: None,
        answers: InterviewAnswers {
            has_fom: N,
            measurable_online: N,
            relates_to_science: BLANK,
            predictable_time: N,
            iterations_known: Y,
            uniform_iterations: N,
            phased: Y,
            bound: ResourceBound::Compute,
        },
        beta_paper: None,
        mpo_paper: None,
    },
    AppRecord {
        name: "HACC",
        description: "Cosmology application that uses N-body techniques for simulation of \
                      galaxies. Many individual components with distinct performance \
                      characteristics.",
        categories: &[Category::Three],
        metric: None,
        answers: InterviewAnswers {
            has_fom: Y,
            measurable_online: N,
            relates_to_science: BLANK,
            predictable_time: Y,
            iterations_known: Y,
            uniform_iterations: N,
            phased: Y,
            bound: ResourceBound::Compute,
        },
        beta_paper: None,
        mpo_paper: None,
    },
];

/// All nine applications of the study, in the paper's order.
pub fn registry() -> &'static [AppRecord] {
    &REGISTRY
}

/// Look an application up by (case-insensitive) name.
pub fn lookup(name: &str) -> Option<&'static AppRecord> {
    REGISTRY.iter().find(|r| r.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_nine_table_ii_apps() {
        let names: Vec<_> = registry().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            [
                "QMCPACK", "OpenMC", "AMG", "LAMMPS", "CANDLE", "STREAM", "URBAN", "Nek5000",
                "HACC"
            ]
        );
    }

    #[test]
    fn derived_categories_match_table_v() {
        for r in registry() {
            let derived = r.answers.derive_category();
            assert!(
                r.categories.contains(&derived),
                "{}: derived {:?} not in published {:?}",
                r.name,
                derived,
                r.categories
            );
        }
    }

    #[test]
    fn category_three_apps_have_no_metric() {
        for r in registry() {
            if r.primary_category() == Category::Three {
                assert!(r.metric.is_none(), "{} should have no metric", r.name);
            } else {
                assert!(r.metric.is_some(), "{} should have a metric", r.name);
            }
        }
    }

    #[test]
    fn table_vi_values_present_for_the_five_characterized_apps() {
        for name in ["QMCPACK", "OpenMC", "AMG", "LAMMPS", "STREAM"] {
            let r = lookup(name).unwrap();
            assert!(r.beta_paper.is_some() && r.mpo_paper.is_some(), "{name}");
        }
        assert!(lookup("HACC").unwrap().beta_paper.is_none());
    }

    #[test]
    fn beta_and_mpo_anticorrelate_across_table_vi() {
        // Paper §IV.A: "good correlation between the MPO and the β metric"
        // (high β ↔ low MPO). The published table itself has one rank
        // inversion (LAMMPS vs OpenMC), so we check concordance of the
        // majority of pairs rather than strict monotonicity.
        let apps: Vec<_> = registry()
            .iter()
            .filter_map(|r| Some((r.beta_paper?, r.mpo_paper?)))
            .collect();
        let mut concordant = 0usize;
        let mut discordant = 0usize;
        for (i, &(b1, m1)) in apps.iter().enumerate() {
            for &(b2, m2) in &apps[i + 1..] {
                if b1 != b2 && m1 != m2 {
                    if (b1 > b2) == (m1 < m2) {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
        assert!(
            concordant >= 9 && discordant <= 1,
            "β/MPO anti-correlation too weak: {concordant} concordant, {discordant} discordant"
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(lookup("lammps").is_some());
        assert!(lookup("NoSuchApp").is_none());
    }
}
