//! Progress watchdog: is the application still making progress?
//!
//! A zero-valued monitoring window has two very different causes. The
//! paper's own framework produces benign zeros — a ~1 report/s source
//! beating against a 1 Hz window, or the lossy ZeroMQ transport dropping
//! reports at its high-water mark (§IV.B, Fig. 3) — and an application
//! that has genuinely hung produces exactly the same zeros, forever. A
//! daemon that restarts jobs on the first zero window kills healthy runs;
//! one that never acts rides a dead job to the end of its allocation.
//!
//! [`ProgressWatchdog`] tells the two apart with debounced, evidence-aware
//! state tracking. Each closed aggregation window is fed to
//! [`ProgressWatchdog::observe`] together with the transport's cumulative
//! drop counter ([`ProgressBus::dropped`]):
//!
//! - a window with events is **healthy** and resets all suspicion;
//! - an empty window while the transport reports *new drops* is a
//!   transport glitch: suspicion is capped at [`Health::Suspect`] —
//!   evidence of loss is evidence the publisher is alive;
//! - empty windows with a quiet transport accumulate: after
//!   `suspect_after` of them the source is [`Health::Suspect`], after
//!   `stall_after` it is declared [`Health::Stalled`].
//!
//! [`ProgressBus::dropped`]: crate::bus::ProgressBus::dropped

use serde::{Deserialize, Serialize};

use crate::aggregator::WindowStats;

/// Watchdog verdict for a progress source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// Progress reports are arriving.
    Healthy,
    /// Reports have gone quiet, but not long enough (or with transport
    /// evidence of loss) — do not act yet.
    Suspect,
    /// Reports have been absent past the stall threshold with no
    /// transport-loss evidence: the source has flatlined.
    Stalled,
}

/// Debounce thresholds, in consecutive empty windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Empty windows before a quiet source becomes [`Health::Suspect`].
    pub suspect_after: u32,
    /// Empty windows before a quiet source is declared
    /// [`Health::Stalled`]. Must be `>= suspect_after`.
    pub stall_after: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        // At 1 Hz windows: worried after 2 s of silence, declared dead
        // after 5 s. OpenMC-style aliasing produces isolated zeros, never
        // five in a row.
        Self {
            suspect_after: 2,
            stall_after: 5,
        }
    }
}

impl WatchdogConfig {
    /// Validate threshold ordering.
    ///
    /// # Panics
    /// Panics if `stall_after < suspect_after` or either is zero.
    pub fn validate(&self) {
        assert!(self.suspect_after > 0, "suspect_after must be positive");
        assert!(
            self.stall_after >= self.suspect_after,
            "stall threshold below suspect threshold"
        );
    }
}

/// Debounced stall detector over closed aggregation windows.
#[derive(Debug, Clone)]
pub struct ProgressWatchdog {
    cfg: WatchdogConfig,
    /// Consecutive empty windows with no transport-loss evidence.
    quiet_streak: u32,
    /// Transport drop counter at the previous observation.
    last_drops: u64,
    /// Windows in which new transport drops were observed.
    lossy_windows: u32,
    state: Health,
}

impl ProgressWatchdog {
    /// A watchdog with the given thresholds.
    pub fn new(cfg: WatchdogConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            quiet_streak: 0,
            last_drops: 0,
            lossy_windows: 0,
            state: Health::Healthy,
        }
    }

    /// Feed one closed window plus the transport's cumulative drop count
    /// at close time; returns the updated verdict.
    pub fn observe(&mut self, window: &WindowStats, transport_drops: u64) -> Health {
        let new_drops = transport_drops.saturating_sub(self.last_drops);
        self.last_drops = transport_drops;
        if new_drops > 0 {
            self.lossy_windows += 1;
        }

        if window.events > 0 {
            self.quiet_streak = 0;
            self.state = Health::Healthy;
        } else if new_drops > 0 {
            // The transport dropped reports this window: the publisher is
            // demonstrably alive, so this cannot count toward a stall.
            self.quiet_streak = 0;
            self.state = Health::Suspect;
        } else {
            self.quiet_streak += 1;
            self.state = if self.quiet_streak >= self.cfg.stall_after {
                Health::Stalled
            } else if self.quiet_streak >= self.cfg.suspect_after {
                Health::Suspect
            } else {
                Health::Healthy
            };
        }
        self.state
    }

    /// The current verdict.
    pub fn health(&self) -> Health {
        self.state
    }

    /// Consecutive empty, loss-free windows so far.
    pub fn quiet_streak(&self) -> u32 {
        self.quiet_streak
    }

    /// Windows in which the transport reported new drops.
    pub fn lossy_windows(&self) -> u32 {
        self.lossy_windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(events: usize) -> WindowStats {
        WindowStats {
            start: 0,
            events,
            sum: events as f64,
        }
    }

    #[test]
    fn steady_reports_stay_healthy() {
        let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
        for _ in 0..20 {
            assert_eq!(wd.observe(&w(3), 0), Health::Healthy);
        }
    }

    #[test]
    fn isolated_zero_window_is_not_suspect() {
        // OpenMC aliasing: a lone zero window between reporting windows.
        let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
        wd.observe(&w(1), 0);
        assert_eq!(wd.observe(&w(0), 0), Health::Healthy, "debounced");
        assert_eq!(wd.observe(&w(1), 0), Health::Healthy);
    }

    #[test]
    fn sustained_silence_escalates_to_stalled() {
        let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
        wd.observe(&w(5), 0);
        let verdicts: Vec<Health> = (0..6).map(|_| wd.observe(&w(0), 0)).collect();
        assert_eq!(verdicts[0], Health::Healthy);
        assert_eq!(verdicts[1], Health::Suspect);
        assert_eq!(verdicts[4], Health::Stalled);
        assert_eq!(verdicts[5], Health::Stalled);
    }

    #[test]
    fn transport_drops_cap_suspicion_below_stalled() {
        // Lossy transport eats every report: windows are empty but the
        // drop counter keeps rising — publisher alive, never Stalled.
        let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
        wd.observe(&w(4), 0);
        let mut drops = 0;
        for _ in 0..20 {
            drops += 3;
            assert_eq!(wd.observe(&w(0), drops), Health::Suspect);
        }
        assert_eq!(wd.lossy_windows(), 20);
    }

    #[test]
    fn recovery_after_stall_verdict() {
        let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
        for _ in 0..8 {
            wd.observe(&w(0), 0);
        }
        assert_eq!(wd.health(), Health::Stalled);
        assert_eq!(wd.observe(&w(2), 0), Health::Healthy);
        assert_eq!(wd.quiet_streak(), 0);
    }

    #[test]
    fn stall_clock_restarts_after_a_glitch() {
        // drop-evidence window resets the quiet streak: silence must be
        // *contiguous and loss-free* to count toward a stall.
        let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
        wd.observe(&w(0), 0);
        wd.observe(&w(0), 0);
        wd.observe(&w(0), 5); // new drops
        for i in 0..4 {
            let h = wd.observe(&w(0), 5);
            assert_ne!(h, Health::Stalled, "window {i} too early for a stall");
        }
        assert_eq!(wd.observe(&w(0), 5), Health::Stalled);
    }

    #[test]
    #[should_panic(expected = "stall threshold")]
    fn bad_thresholds_rejected() {
        ProgressWatchdog::new(WatchdogConfig {
            suspect_after: 5,
            stall_after: 2,
        });
    }
}
