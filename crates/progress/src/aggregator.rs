//! Fixed-window progress aggregation.
//!
//! The paper's monitoring daemon collects raw progress reports and averages
//! them "once every second" (§IV.B.1). [`ProgressAggregator`] reproduces
//! that: it drains a [`crate::bus::Subscriber`], buckets events
//! into fixed windows, and emits one *rate* sample per window — including
//! **zero-valued windows** when no report arrived, which is how the OpenMC
//! zero readings of paper Fig. 3 show up (a ~1 report/s source beating
//! against a 1 Hz window).

use serde::{Deserialize, Serialize};

use crate::bus::Subscriber;
use crate::event::SourceId;
use crate::series::TimeSeries;

/// Per-window aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window start, nanoseconds.
    pub start: u64,
    /// Number of reports in the window.
    pub events: usize,
    /// Sum of report values in the window.
    pub sum: f64,
}

/// Streams subscriber events into fixed windows.
pub struct ProgressAggregator {
    sub: Subscriber,
    window: u64,
    filter: Option<SourceId>,
    current_start: u64,
    current: WindowStats,
    closed: Vec<WindowStats>,
}

impl ProgressAggregator {
    /// Aggregate `sub` into windows of `window` nanoseconds, optionally
    /// filtering to a single source.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(sub: Subscriber, window: u64, filter: Option<SourceId>) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            sub,
            window,
            filter,
            current_start: 0,
            current: WindowStats {
                start: 0,
                events: 0,
                sum: 0.0,
            },
            closed: Vec::new(),
        }
    }

    /// Drain pending events and close every window that ends at or before
    /// `now`. Call this periodically (e.g. once per simulated second).
    pub fn poll(&mut self, now: u64) {
        for ev in self.sub.drain() {
            if let Some(f) = self.filter {
                if ev.source != f {
                    continue;
                }
            }
            // Events can only arrive at or after the current window: the
            // driver polls in time order. Late events are folded into the
            // current window rather than lost.
            let target_start = (ev.at / self.window) * self.window;
            if target_start > self.current_start {
                self.close_through(target_start);
            }
            self.current.events += 1;
            self.current.sum += ev.value;
        }
        let now_start = (now / self.window) * self.window;
        if now_start > self.current_start {
            self.close_through(now_start);
        }
    }

    fn close_through(&mut self, new_start: u64) {
        while self.current_start < new_start {
            self.closed.push(self.current);
            self.current_start += self.window;
            self.current = WindowStats {
                start: self.current_start,
                events: 0,
                sum: 0.0,
            };
        }
    }

    /// All closed windows so far.
    pub fn windows(&self) -> &[WindowStats] {
        &self.closed
    }

    /// Convert closed windows into a rate series: one sample per window at
    /// the window's *end* time, value = sum / window-length (units/s).
    pub fn rate_series(&self) -> TimeSeries {
        let w_s = self.window as f64 / 1e9;
        self.closed
            .iter()
            .map(|w| ((w.start + self.window) as f64 / 1e9, w.sum / w_s))
            .collect()
    }

    /// Finish at `end`: close any window in flight and return the series.
    pub fn finish(mut self, end: u64) -> TimeSeries {
        self.poll(end);
        let end_start = (end / self.window) * self.window;
        if end > end_start {
            // Partial trailing window: close it too, scaled as a full
            // window would be (the paper's plots do the same at run end).
            self.closed.push(self.current);
        }
        self.rate_series()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{BusConfig, ProgressBus};

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn steady_reporter_gives_flat_rate() {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let mut agg = ProgressAggregator::new(sub, SEC, None);
        // 20 reports/s of 54 units for 5 s (LAMMPS-like); reports sit
        // mid-interval so none lands exactly on a window boundary.
        for i in 0..100u64 {
            let at = i * SEC / 20 + SEC / 40;
            p.publish(at, 54.0);
            if i % 20 == 19 {
                agg.poll(at);
            }
        }
        let s = agg.finish(5 * SEC);
        assert_eq!(s.len(), 5);
        for (_, v) in s.iter() {
            assert!((v - 1080.0).abs() < 1e-9, "rate {v} != 1080");
        }
    }

    #[test]
    fn empty_windows_emit_zero() {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let mut agg = ProgressAggregator::new(sub, SEC, None);
        p.publish(SEC / 2, 1.0);
        p.publish(3 * SEC + SEC / 2, 1.0);
        agg.poll(4 * SEC);
        let s = agg.rate_series();
        assert_eq!(s.len(), 4);
        assert_eq!(s.v, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn one_per_second_reporter_aliases_to_zeros_and_doubles() {
        // A reporter slightly slower than 1 Hz (OpenMC batches) drifts
        // across window boundaries: some windows see 0 reports, others 2.
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let mut agg = ProgressAggregator::new(sub, SEC, None);
        let period = SEC + SEC / 20; // 1.05 s per batch
        let mut t = period;
        for _ in 0..40 {
            p.publish(t, 1.0);
            agg.poll(t);
            t += period;
        }
        let s = agg.finish(t);
        assert!(s.zero_count() > 0, "expected some zero windows");
        assert!(
            s.v.iter().any(|&v| v >= 2.0) || s.zero_count() >= 1,
            "aliasing should produce doubled or zero windows"
        );
    }

    #[test]
    fn filter_selects_single_source() {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p1 = bus.publisher();
        let p2 = bus.publisher();
        let mut agg = ProgressAggregator::new(sub, SEC, Some(p1.source()));
        p1.publish(SEC / 2, 5.0);
        p2.publish(SEC / 2, 100.0);
        agg.poll(SEC);
        assert_eq!(agg.windows().len(), 1);
        assert_eq!(agg.windows()[0].sum, 5.0);
    }

    #[test]
    fn rate_accounts_for_window_length() {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let half = SEC / 2;
        let mut agg = ProgressAggregator::new(sub, half, None);
        p.publish(100, 3.0);
        agg.poll(half);
        let s = agg.rate_series();
        assert_eq!(s.len(), 1);
        assert!((s.v[0] - 6.0).abs() < 1e-12, "3 units / 0.5 s = 6/s");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let bus = ProgressBus::new();
        let sub = bus.subscribe(BusConfig::lossless());
        let _ = ProgressAggregator::new(sub, 0, None);
    }
}
