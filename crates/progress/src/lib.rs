//! # progress — online application progress monitoring
//!
//! This crate implements the paper's central artefact: an *online,
//! application-specific notion of progress* that can be monitored at
//! runtime (Ramesh et al., IPDPS-W 2019, §III–IV).
//!
//! - [`event`] / [`bus`]: a publish-subscribe progress transport modelled
//!   on the paper's ZeroMQ setup, including an optional bounded *lossy*
//!   mode that reproduces the reporting flaw behind OpenMC's occasional
//!   zero readings (paper Fig. 3);
//! - [`aggregator`]: fixed-window (1 Hz in the paper) aggregation of raw
//!   reports into a progress-rate time series;
//! - [`series`]: time-series container with the summary statistics the
//!   evaluation needs (steady-state means, coefficient of variation);
//! - [`taxonomy`]: the paper's three-way categorization of applications
//!   and the interview questionnaire of Table III;
//! - [`mod@registry`]: Tables II, IV and V as queryable data;
//! - [`watchdog`]: debounced stall detection that distinguishes genuine
//!   application flatlines from lossy-transport zero glitches.

pub mod aggregator;
pub mod bus;
pub mod event;
pub mod imbalance;
pub mod registry;
pub mod series;
pub mod taxonomy;
pub mod watchdog;

pub use aggregator::{ProgressAggregator, WindowStats};
pub use bus::{BusConfig, DropPolicy, ProgressBus, Publisher, Subscriber};
pub use event::{MetricDesc, ProgressEvent, SourceId};
pub use imbalance::{analyze, ImbalanceError, ImbalanceReport};
pub use registry::{registry, AppRecord};
pub use series::TimeSeries;
pub use taxonomy::{Category, InterviewAnswers, ResourceBound, QUESTIONS};
pub use watchdog::{Health, ProgressWatchdog, WatchdogConfig};

#[cfg(test)]
mod proptests;
