//! Time-series container and statistics.
//!
//! Progress rates, power, frequency and cap traces are all `(t, v)` series.
//! The evaluation needs steady-state means (to measure the *change in
//! progress* when a cap is applied from an uncapped state, paper §VI.2),
//! fluctuation measures (AMG's 2.5–3 it/s band, Fig. 1), and window means.

use serde::{Deserialize, Serialize};

/// A simple time series: times in seconds, values in the series' unit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sample times, seconds, non-decreasing.
    pub t: Vec<f64>,
    /// Sample values.
    pub v: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `t` decreases.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.t.last() {
            assert!(t >= last, "time series must be non-decreasing in t");
        }
        self.t.push(t);
        self.v.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Iterate over `(t, v)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t.iter().copied().zip(self.v.iter().copied())
    }

    /// Mean of all values; 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.v.is_empty() {
            return 0.0;
        }
        self.v.iter().sum::<f64>() / self.v.len() as f64
    }

    /// Population standard deviation of values.
    pub fn std(&self) -> f64 {
        if self.v.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.v.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std() / m
        }
    }

    /// Minimum value, or NaN for an empty series.
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Maximum value, or NaN for an empty series.
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Mean of values with `t0 <= t < t1`; 0 when no samples fall inside.
    pub fn mean_between(&self, t0: f64, t1: f64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.iter() {
            if t >= t0 && t < t1 {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean after trimming a fraction of samples off each end — a robust
    /// "steady-state" estimate that skips warm-up and tear-down.
    pub fn steady_mean(&self, trim_frac: f64) -> f64 {
        assert!((0.0..0.5).contains(&trim_frac));
        let n = self.v.len();
        if n == 0 {
            return 0.0;
        }
        let skip = (n as f64 * trim_frac).floor() as usize;
        let slice = &self.v[skip..n - skip.min(n - skip)];
        if slice.is_empty() {
            return self.mean();
        }
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// Count of samples whose value is exactly zero (used to detect the
    /// OpenMC zero-reporting artefact).
    pub fn zero_count(&self) -> usize {
        self.v.iter().filter(|&&x| x == 0.0).count()
    }

    /// Downsample into buckets of `k` consecutive samples, averaging both
    /// time and value; a trailing partial bucket is dropped. Useful for
    /// comparing series against coarse (batch-level) reporters whose 1 s
    /// windows alias (paper Fig. 3).
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn bucket_mean(&self, k: usize) -> TimeSeries {
        assert!(k > 0, "bucket size must be positive");
        let mut out = TimeSeries::new();
        for (tc, vc) in self.t.chunks(k).zip(self.v.chunks(k)) {
            if tc.len() < k {
                break;
            }
            let finite: Vec<f64> = vc.iter().copied().filter(|v| v.is_finite()).collect();
            let v = if finite.is_empty() {
                f64::NAN
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            };
            out.push(tc.iter().sum::<f64>() / k as f64, v);
        }
        out
    }

    /// Render as CSV lines `t,v` with the given header.
    pub fn to_csv(&self, t_name: &str, v_name: &str) -> String {
        let mut out = String::with_capacity(16 * (self.len() + 1));
        out.push_str(t_name);
        out.push(',');
        out.push_str(v_name);
        out.push('\n');
        for (t, v) in self.iter() {
            out.push_str(&format!("{t:.6},{v:.6}\n"));
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect()
    }

    #[test]
    fn mean_std_cv() {
        let s = series(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_series_statistics_are_safe() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert!(s.min().is_nan());
        assert_eq!(s.mean_between(0.0, 10.0), 0.0);
        assert_eq!(s.steady_mean(0.1), 0.0);
    }

    #[test]
    fn mean_between_is_half_open() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        // t in [1, 3): samples at t=1 (v=2) and t=2 (v=3).
        assert!((s.mean_between(1.0, 3.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn steady_mean_trims_edges() {
        let mut vals = vec![0.0, 0.0];
        vals.extend(std::iter::repeat_n(10.0, 16));
        vals.extend([0.0, 0.0]);
        let s = series(&vals);
        assert!((s.steady_mean(0.1) - 10.0).abs() < 1e-12);
        assert!(s.mean() < 10.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_cannot_go_backwards() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn zero_count_counts_exact_zeros() {
        let s = series(&[0.0, 1.0, 0.0, 2.0]);
        assert_eq!(s.zero_count(), 2);
    }

    #[test]
    fn bucket_mean_averages_and_drops_partials() {
        let s = series(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let b = s.bucket_mean(2);
        assert_eq!(b.v, vec![2.0, 6.0]);
        assert_eq!(b.t, vec![0.5, 2.5]);
    }

    #[test]
    fn bucket_mean_ignores_nans_within_a_bucket() {
        let mut s = TimeSeries::new();
        s.push(0.0, f64::NAN);
        s.push(1.0, 4.0);
        let b = s.bucket_mean(2);
        assert_eq!(b.v, vec![4.0]);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn zero_bucket_rejected() {
        series(&[1.0]).bucket_mean(0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = series(&[1.5]);
        let csv = s.to_csv("t", "rate");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t,rate"));
        assert_eq!(lines.next(), Some("0.000000,1.500000"));
    }
}
