//! Progress events and metric descriptors.
//!
//! Each instrumented application publishes a single progress value per
//! instrumentation point ("progress is reported as a single value for the
//! application", paper §IV.B). The value carries the *amount of work* the
//! report represents in the application's own unit — atoms simulated for a
//! LAMMPS timestep, particles for an OpenMC batch, one iteration for AMG —
//! so the aggregator can turn reports into a rate.

use serde::{Deserialize, Serialize};

/// Identifies a publisher on the bus (an application, or a component of a
/// multi-component application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

/// One progress report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// Who published it.
    pub source: SourceId,
    /// Simulated time of publication, nanoseconds.
    pub at: u64,
    /// Amount of work this report represents, in the source's metric unit.
    pub value: f64,
}

/// Human-readable description of a progress metric (paper Table V).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDesc {
    /// Metric name, e.g. "atom timesteps per second".
    pub name: &'static str,
    /// Unit of a single report value, e.g. "atom timesteps".
    pub unit: &'static str,
}

impl MetricDesc {
    /// Construct a descriptor.
    pub const fn new(name: &'static str, unit: &'static str) -> Self {
        Self { name, unit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_by_source_then_time_naturally() {
        let a = ProgressEvent {
            source: SourceId(1),
            at: 5,
            value: 1.0,
        };
        let b = ProgressEvent {
            source: SourceId(1),
            at: 5,
            value: 1.0,
        };
        assert_eq!(a, b);
    }

    #[test]
    fn metric_desc_is_const_constructible() {
        const M: MetricDesc = MetricDesc::new("blocks per second", "blocks");
        assert_eq!(M.unit, "blocks");
    }
}
