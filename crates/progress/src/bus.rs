//! The progress transport: a publish-subscribe bus.
//!
//! The paper instruments each application "to publish its online
//! performance metric using the publish-subscribe ZeroMQ sockets" (§IV.B).
//! This module is the in-process equivalent. Two transports are offered:
//!
//! - **lossless** (default): an unbounded MPMC channel;
//! - **lossy**: a bounded ring with a configurable drop policy. The paper
//!   notes that OpenMC's progress "is occasionally reported as zero ...
//!   due to a flaw in the design of the ZeroMQ-based progress monitoring
//!   framework" — running a coarse-grained reporter through a small lossy
//!   ring reproduces exactly that artefact, and the lossy/lossless pair is
//!   used as an ablation in the benchmarks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::event::{ProgressEvent, SourceId};

/// What to do when a bounded subscriber queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropPolicy {
    /// Discard the incoming event (ZeroMQ `PUB` high-water-mark behaviour).
    DropNewest,
    /// Overwrite the oldest queued event (conflating subscriber).
    DropOldest,
}

/// Subscriber queue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Maximum queued events; `None` = unbounded (lossless).
    pub capacity: Option<usize>,
    /// Drop policy when bounded and full.
    pub drop: DropPolicy,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            capacity: None,
            drop: DropPolicy::DropNewest,
        }
    }
}

impl BusConfig {
    /// A lossless, unbounded transport.
    pub fn lossless() -> Self {
        Self::default()
    }

    /// A lossy transport holding at most `capacity` undelivered events.
    pub fn lossy(capacity: usize, drop: DropPolicy) -> Self {
        assert!(capacity > 0, "lossy capacity must be positive");
        Self {
            capacity: Some(capacity),
            drop,
        }
    }
}

enum Pipe {
    Lossless(Sender<ProgressEvent>),
    Lossy {
        queue: Arc<Mutex<VecDeque<ProgressEvent>>>,
        capacity: usize,
        drop: DropPolicy,
    },
}

struct SubscriberEntry {
    pipe: Pipe,
}

struct Inner {
    subs: Mutex<Vec<SubscriberEntry>>,
    next_source: AtomicU32,
    dropped: AtomicU64,
}

/// The bus itself. Cheap to clone; all clones share state.
///
/// ```
/// use progress::bus::{BusConfig, ProgressBus};
///
/// let bus = ProgressBus::new();
/// let mut monitor = bus.subscribe(BusConfig::lossless());
/// let app = bus.publisher();
/// app.publish(1_000_000_000, 40.0); // one LAMMPS timestep's atoms
/// let events = monitor.drain();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].value, 40.0);
/// ```
#[derive(Clone)]
pub struct ProgressBus {
    inner: Arc<Inner>,
}

impl ProgressBus {
    /// A new, empty bus.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                subs: Mutex::new(Vec::new()),
                next_source: AtomicU32::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Register a publisher; each registration gets a fresh [`SourceId`].
    pub fn publisher(&self) -> Publisher {
        let id = self.inner.next_source.fetch_add(1, Ordering::Relaxed);
        Publisher {
            source: SourceId(id),
            inner: Arc::clone(&self.inner),
        }
    }

    /// Register a subscriber with the given transport configuration.
    /// Subscribers only see events published after they subscribe
    /// (ZeroMQ pub-sub semantics).
    pub fn subscribe(&self, cfg: BusConfig) -> Subscriber {
        let mut subs = self.inner.subs.lock();
        match cfg.capacity {
            None => {
                let (tx, rx) = unbounded();
                subs.push(SubscriberEntry {
                    pipe: Pipe::Lossless(tx),
                });
                Subscriber {
                    recv: Recv::Lossless(rx),
                }
            }
            Some(capacity) => {
                let queue = Arc::new(Mutex::new(VecDeque::with_capacity(capacity)));
                subs.push(SubscriberEntry {
                    pipe: Pipe::Lossy {
                        queue: Arc::clone(&queue),
                        capacity,
                        drop: cfg.drop,
                    },
                });
                Subscriber {
                    recv: Recv::Lossy(queue),
                }
            }
        }
    }

    /// Total events dropped by lossy transports since construction.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl Default for ProgressBus {
    fn default() -> Self {
        Self::new()
    }
}

/// A handle an application uses to publish progress.
pub struct Publisher {
    source: SourceId,
    inner: Arc<Inner>,
}

impl Publisher {
    /// The source identity of this publisher.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Publish one report: `value` units of work completed, at simulated
    /// time `at` (nanoseconds).
    pub fn publish(&self, at: u64, value: f64) {
        let ev = ProgressEvent {
            source: self.source,
            at,
            value,
        };
        let subs = self.inner.subs.lock();
        for s in subs.iter() {
            match &s.pipe {
                Pipe::Lossless(tx) => {
                    // Receiver may be gone; publishing is fire-and-forget.
                    let _ = tx.send(ev);
                }
                Pipe::Lossy {
                    queue,
                    capacity,
                    drop,
                } => {
                    let mut q = queue.lock();
                    if q.len() >= *capacity {
                        match drop {
                            DropPolicy::DropNewest => {
                                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            DropPolicy::DropOldest => {
                                q.pop_front();
                                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    q.push_back(ev);
                }
            }
        }
    }
}

enum Recv {
    Lossless(Receiver<ProgressEvent>),
    Lossy(Arc<Mutex<VecDeque<ProgressEvent>>>),
}

/// A handle monitoring software uses to receive progress reports.
pub struct Subscriber {
    recv: Recv,
}

impl Subscriber {
    /// Drain all currently queued events, in publication order.
    pub fn drain(&mut self) -> Vec<ProgressEvent> {
        match &self.recv {
            Recv::Lossless(rx) => rx.try_iter().collect(),
            Recv::Lossy(q) => q.lock().drain(..).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_delivers_everything_in_order() {
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        for i in 0..100u64 {
            p.publish(i, i as f64);
        }
        let got = sub.drain();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn drop_newest_keeps_oldest_events() {
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(4, DropPolicy::DropNewest));
        let p = bus.publisher();
        for i in 0..10u64 {
            p.publish(i, i as f64);
        }
        let got = sub.drain();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].at, 0);
        assert_eq!(got[3].at, 3);
        assert_eq!(bus.dropped(), 6);
    }

    #[test]
    fn drop_oldest_keeps_newest_events() {
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossy(4, DropPolicy::DropOldest));
        let p = bus.publisher();
        for i in 0..10u64 {
            p.publish(i, i as f64);
        }
        let got = sub.drain();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].at, 6);
        assert_eq!(got[3].at, 9);
    }

    #[test]
    fn publishers_get_distinct_sources() {
        let bus = ProgressBus::new();
        let a = bus.publisher();
        let b = bus.publisher();
        assert_ne!(a.source(), b.source());
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let bus = ProgressBus::new();
        let mut s1 = bus.subscribe(BusConfig::lossless());
        let mut s2 = bus.subscribe(BusConfig::lossless());
        bus.publisher().publish(1, 2.0);
        assert_eq!(s1.drain().len(), 1);
        assert_eq!(s2.drain().len(), 1);
    }

    #[test]
    fn late_subscriber_misses_earlier_events() {
        let bus = ProgressBus::new();
        let p = bus.publisher();
        p.publish(1, 1.0);
        let mut sub = bus.subscribe(BusConfig::lossless());
        p.publish(2, 1.0);
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, 2);
    }

    #[test]
    fn bus_works_across_threads() {
        let bus = ProgressBus::new();
        let mut sub = bus.subscribe(BusConfig::lossless());
        let p = bus.publisher();
        let h = std::thread::spawn(move || {
            for i in 0..1000u64 {
                p.publish(i, 1.0);
            }
        });
        h.join().unwrap();
        assert_eq!(sub.drain().len(), 1000);
    }
}
