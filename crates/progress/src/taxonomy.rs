//! The paper's application taxonomy (§III.B) and interview questionnaire
//! (Table III).
//!
//! - **Category 1**: loop-based applications with a well-defined online
//!   performance metric that correlates with the application's scientific
//!   goal (and its FOM, if defined).
//! - **Category 2**: online performance is well defined but does *not*
//!   correlate with the scientific metrics of interest — one cannot tell
//!   how far the application has progressed toward its goal.
//! - **Category 3**: online performance cannot be monitored reliably,
//!   and/or the application is composed of multiple components that defeat
//!   a single metric.

use serde::{Deserialize, Serialize};

/// The eight questions posed to application specialists (paper Table III).
pub const QUESTIONS: [&str; 8] = [
    "Is there a well-defined FOM for the application?",
    "Can we measure online performance during execution that correlates \
     well with either FOM or the execution time?",
    "Does online performance measure progress toward an application-defined \
     scientific goal?",
    "Is the execution time accurately predictable based on a performance \
     model of the application?",
    "If the application is loop based, is the number of loop iterations \
     decided prior to execution?",
    "If application is loop based, do loop iterations proceed in a uniform \
     manner in terms of instructions executed?",
    "Does the application have multiple phases or components that are \
     clearly demarcated from a design or performance characteristic \
     standpoint?",
    "What system resource is the application limited by?",
];

/// Progress-metric category (paper §III.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Clear, well-defined online performance correlated with the science.
    One,
    /// Well-defined online performance, uncorrelated with the science.
    Two,
    /// No reliable single metric (unmonitorable or multi-component).
    Three,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::One => write!(f, "1"),
            Category::Two => write!(f, "2"),
            Category::Three => write!(f, "3"),
        }
    }
}

/// The limiting system resource (Table IV, question 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceBound {
    /// CPU compute bound.
    Compute,
    /// Bound by memory latency.
    MemoryLatency,
    /// Bound by memory bandwidth.
    MemoryBandwidth,
    /// Different components have different bounds.
    ComponentDependent,
}

impl std::fmt::Display for ResourceBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceBound::Compute => write!(f, "Compute"),
            ResourceBound::MemoryLatency => write!(f, "Memory latency"),
            ResourceBound::MemoryBandwidth => write!(f, "Memory bandwidth"),
            ResourceBound::ComponentDependent => write!(f, "Component-dependent"),
        }
    }
}

/// One application's answers to the questionnaire (paper Table IV).
/// `None` encodes a blank/ambiguous answer in the published table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterviewAnswers {
    /// Q1: well-defined FOM exists.
    pub has_fom: Option<bool>,
    /// Q2: online performance measurable and correlated with FOM/time.
    pub measurable_online: Option<bool>,
    /// Q3: online performance measures progress toward the science goal.
    pub relates_to_science: Option<bool>,
    /// Q4: execution time predictable from a model.
    pub predictable_time: Option<bool>,
    /// Q5: loop-iteration count known before execution.
    pub iterations_known: Option<bool>,
    /// Q6: loop iterations uniform in instructions.
    pub uniform_iterations: Option<bool>,
    /// Q7: clearly demarcated phases/components.
    pub phased: Option<bool>,
    /// Q8: limiting resource.
    pub bound: ResourceBound,
}

impl InterviewAnswers {
    /// Derive the paper's category from the questionnaire, per §III.B:
    /// unmonitorable or component-dependent applications are Category 3;
    /// monitorable ones split on whether the metric tracks the science.
    pub fn derive_category(&self) -> Category {
        let measurable = self.measurable_online.unwrap_or(false);
        if !measurable || matches!(self.bound, ResourceBound::ComponentDependent) {
            return Category::Three;
        }
        match self.relates_to_science {
            Some(true) => Category::One,
            _ => Category::Two,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answers(measurable: bool, science: Option<bool>, bound: ResourceBound) -> InterviewAnswers {
        InterviewAnswers {
            has_fom: Some(true),
            measurable_online: Some(measurable),
            relates_to_science: science,
            predictable_time: Some(true),
            iterations_known: Some(true),
            uniform_iterations: Some(true),
            phased: Some(false),
            bound,
        }
    }

    #[test]
    fn measurable_and_scientific_is_category_one() {
        let a = answers(true, Some(true), ResourceBound::Compute);
        assert_eq!(a.derive_category(), Category::One);
    }

    #[test]
    fn measurable_but_not_scientific_is_category_two() {
        let a = answers(true, Some(false), ResourceBound::MemoryBandwidth);
        assert_eq!(a.derive_category(), Category::Two);
    }

    #[test]
    fn unmonitorable_is_category_three() {
        let a = answers(false, Some(true), ResourceBound::Compute);
        assert_eq!(a.derive_category(), Category::Three);
    }

    #[test]
    fn component_dependent_is_category_three_even_if_measurable() {
        let a = answers(true, Some(true), ResourceBound::ComponentDependent);
        assert_eq!(a.derive_category(), Category::Three);
    }

    #[test]
    fn questionnaire_has_eight_questions() {
        assert_eq!(QUESTIONS.len(), 8);
        assert!(QUESTIONS[7].contains("resource"));
    }

    #[test]
    fn category_displays_as_number() {
        assert_eq!(Category::One.to_string(), "1");
        assert_eq!(Category::Three.to_string(), "3");
    }
}
