//! Property-based integration tests: invariants that must hold across the
//! whole stack for arbitrary (bounded) parameters.

use powerprog::prelude::*;
use proptest::prelude::*;

/// Energy accounting is self-consistent: mean power × time == energy.
#[test]
fn energy_equals_mean_power_times_time() {
    let run = run_app(&RunConfig::new(AppId::Stream, 4 * SEC));
    let reconstructed = run.mean_power() * run.duration_s;
    assert!((reconstructed - run.total_energy_j).abs() / run.total_energy_j < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a real simulation; keep the count sane
        ..ProptestConfig::default()
    })]

    /// RAPL enforces any admissible cap on the rolling average: the settled
    /// package power never exceeds the cap by more than the control slack.
    #[test]
    fn any_admissible_cap_is_enforced(cap in 45.0f64..150.0) {
        let run = run_app(
            &RunConfig::new(AppId::Lammps, 5 * SEC)
                .with_schedule(ScheduleSpec::Constant(cap)),
        );
        let settled = run.settled_power();
        prop_assert!(
            settled <= cap * 1.08 + 1.0,
            "cap {cap:.0} W, settled {settled:.1} W"
        );
    }

    /// Tighter caps never yield more progress (within noise).
    #[test]
    fn progress_is_monotone_in_the_cap(lo in 50.0f64..90.0, hi_extra in 20.0f64..60.0) {
        let hi = lo + hi_extra;
        let rate = |cap: f64| {
            run_app(
                &RunConfig::new(AppId::QmcpackDmc, 5 * SEC)
                    .with_schedule(ScheduleSpec::Constant(cap)),
            )
            .steady_rate()
        };
        let r_lo = rate(lo);
        let r_hi = rate(hi);
        prop_assert!(
            r_hi >= r_lo * 0.97,
            "cap {lo:.0} W gave {r_lo:.2}, cap {hi:.0} W gave {r_hi:.2}"
        );
    }

    /// The same configuration and seed reproduce identical results, and
    /// the progress series is identical bit-for-bit (full determinism
    /// through the parallel sweep machinery is tested in `sweep`).
    #[test]
    fn runs_are_deterministic(seed in 0u64..1000) {
        let cfg = RunConfig::new(AppId::Amg, 4 * SEC).with_seed(seed);
        let a = run_app(&cfg);
        let b = run_app(&cfg);
        prop_assert_eq!(a.progress[0].clone(), b.progress[0].clone());
        prop_assert!((a.total_energy_j - b.total_energy_j).abs() < 1e-9);
        prop_assert_eq!(a.counters.instructions.to_bits(), b.counters.instructions.to_bits());
    }

    /// Eq. 7 consistency against the full pipeline: for any β and cap, the
    /// predicted rate is within (0, r_max] and delta + rate == r_max.
    #[test]
    fn model_predictions_are_well_formed(
        beta in 0.05f64..1.0,
        cap in 30.0f64..200.0,
        pkg in 100.0f64..180.0,
        r_max in 0.5f64..2000.0,
    ) {
        let m = ProgressModel::from_uncapped_run(beta, PAPER_ALPHA, pkg, r_max);
        let rate = m.predict_rate(cap);
        let delta = m.predict_delta(cap);
        prop_assert!(rate > 0.0 && rate <= r_max * (1.0 + 1e-12));
        prop_assert!((rate + delta - r_max).abs() < 1e-9 * r_max);
        // Inverse query round-trips whenever the rate is attainable.
        if let Some(back) = m.required_cap_for_rate(rate) {
            let forward = m.predict_rate(back);
            prop_assert!((forward - rate).abs() < 1e-6 * r_max);
        }
    }

    /// Cap schedules are well-formed: linear decay is monotone within the
    /// ramp and step/jagged stay inside [low, high].
    #[test]
    fn schedules_stay_in_their_bands(
        low in 40.0f64..80.0,
        high_extra in 10.0f64..80.0,
        t in 0u64..400_000_000_000u64,
    ) {
        use nrm::scheme::{CapSchedule, JaggedEdge, StepFunction};
        let high = low + high_extra;
        let step = StepFunction { high_w: Some(high), low_w: low, period: 20 * SEC, high_fraction: 0.5 };
        if let Some(c) = step.cap_at(t) {
            prop_assert!(c == low || c == high);
        }
        let jag = JaggedEdge { high_w: high, low_w: low, decay: 30 * SEC };
        let c = jag.cap_at(t).unwrap();
        prop_assert!(c >= low - 1e-9 && c <= high + 1e-9);
    }
}

/// Work conservation: the total reported progress equals iterations
/// actually executed — no monitoring path loses lossless reports.
#[test]
fn lossless_monitoring_conserves_reported_work() {
    let run = run_app(&RunConfig::new(AppId::Stream, 6 * SEC));
    let windowed: f64 = run.progress[0].v.iter().sum();
    let truth = run.channel_stats[0].sum;
    assert!(
        (windowed - truth).abs() <= 1.0 + truth * 1e-9,
        "windowed {windowed} vs raw {truth}"
    );
}

/// Per-core counters are non-negative and monotone through a run with
/// mixed work (compute, spin, sleep).
#[test]
fn counters_accumulate_monotonically() {
    let mut node = Node::new(NodeConfig::default());
    node.assign(
        0,
        CoreWork::Compute(WorkPacket::new(3.3e9, 1e6, 5e9).into()),
    );
    node.assign(1, CoreWork::Spin);
    node.assign(2, CoreWork::Sleep { until: SEC });
    let mut prev = (0.0, 0.0, 0.0);
    for _ in 0..5000 {
        node.step();
        let c = node.counters();
        assert!(c.instructions >= prev.0 && c.cycles >= prev.1 && c.l3_misses >= prev.2);
        prev = (c.instructions, c.cycles, c.l3_misses);
    }
}
