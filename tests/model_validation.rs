//! Integration checks on the Fig. 4 model-validation machinery: the error
//! *structure* the paper reports must emerge from the simulator's RAPL
//! mechanisms (P-state quantization, α drift, DDCM, uncore throttling).

use powerprog::core::experiments::fig4;
use powerprog::prelude::*;

/// Run the paper's Fig. 4 step-function protocol for one app over the
/// given caps (1 seed, short regions — integration smoke scale).
fn series(app: AppId, caps: &[f64]) -> fig4::AppSeries {
    let cfg = fig4::Config {
        caps_w: caps.to_vec(),
        seeds: 1,
        lead_in: 6 * SEC,
        capped: 12 * SEC,
        characterization: powerprog::core::experiments::table6::Config::quick(),
    };
    fig4::run_app_series(app, &cfg)
}

#[test]
fn lammps_model_error_is_small_at_mid_range_caps() {
    // Paper Fig. 4a: within 13.3% for moderate effective caps.
    let s = series(AppId::Lammps, &[75.0, 90.0]);
    for p in &s.points {
        let err = (p.predicted_delta - p.measured_delta).abs() / p.measured_delta;
        assert!(
            err < 0.15,
            "LAMMPS @{} W error {:.1}%",
            p.cap_w,
            err * 100.0
        );
    }
}

#[test]
fn amg_model_overestimates_the_impact() {
    // Paper Fig. 4b: "the model, in general, overestimates the impact of
    // RAPL-based power capping on progress" for AMG.
    let s = series(AppId::Amg, &[60.0, 75.0, 90.0]);
    let predicted: f64 = s.points.iter().map(|p| p.predicted_delta).sum();
    let measured: f64 = s.points.iter().map(|p| p.measured_delta).sum();
    assert!(
        predicted > measured * 1.05,
        "AMG: predicted {predicted:.3} should exceed measured {measured:.3}"
    );
}

#[test]
fn stream_model_underestimates_badly() {
    // Paper Fig. 4d: the model cannot see uncore-bandwidth throttling.
    let s = series(AppId::Stream, &[90.0]);
    let p = &s.points[0];
    assert!(
        p.predicted_delta < p.measured_delta * 0.5,
        "STREAM @90 W: predicted {:.2} vs measured {:.2}",
        p.predicted_delta,
        p.measured_delta
    );
    assert!(
        p.measured_delta > 0.2 * p.r_max,
        "the cap must hurt STREAM substantially"
    );
}

#[test]
fn model_delta_grows_monotonically_as_caps_tighten() {
    let base = run_app(&RunConfig::new(AppId::QmcpackDmc, 8 * SEC));
    let model =
        ProgressModel::from_uncapped_run(0.84, PAPER_ALPHA, base.mean_power(), base.steady_rate());
    let mut prev_measured = -1.0;
    let mut prev_predicted = -1.0;
    for cap in [130.0, 100.0, 70.0, 50.0] {
        let capped = run_app(
            &RunConfig::new(AppId::QmcpackDmc, 8 * SEC).with_schedule(ScheduleSpec::Constant(cap)),
        );
        let measured = base.steady_rate() - capped.steady_rate();
        let predicted = model.predict_delta(cap);
        assert!(
            measured >= prev_measured - 0.02 * model.r_max,
            "measured delta must grow as caps tighten ({cap} W)"
        );
        assert!(predicted >= prev_predicted, "predicted delta must grow");
        prev_measured = measured;
        prev_predicted = predicted;
    }
}

#[test]
fn inverse_query_closes_the_loop_against_measurement() {
    // Ask the model which cap sustains ~80% progress, apply it, and check
    // the measured rate lands within a modest band of the target (the
    // model is approximate — the point is the workflow the paper
    // envisions: "decide on the exact power budget to be employed given an
    // expectation of online performance").
    let base = run_app(&RunConfig::new(AppId::Lammps, 8 * SEC));
    let model =
        ProgressModel::from_uncapped_run(1.0, PAPER_ALPHA, base.mean_power(), base.steady_rate());
    let target = 0.8 * model.r_max;
    let cap = model.required_cap_for_rate(target).expect("feasible");
    let capped =
        run_app(&RunConfig::new(AppId::Lammps, 8 * SEC).with_schedule(ScheduleSpec::Constant(cap)));
    let achieved = capped.steady_rate();
    let rel = (achieved - target).abs() / target;
    assert!(
        rel < 0.12,
        "target {target:.0}, achieved {achieved:.0} under the model's {cap:.1} W cap"
    );
}

#[test]
fn alpha_fit_recovers_a_value_in_the_papers_observed_band() {
    // The paper: "this value varies between 1 and 4 depending on the range
    // of the power cap being applied."
    let base = run_app(&RunConfig::new(AppId::QmcpackDmc, 8 * SEC));
    let model =
        ProgressModel::from_uncapped_run(0.84, PAPER_ALPHA, base.mean_power(), base.steady_rate());
    let mut data = Vec::new();
    for cap in [60.0, 80.0, 100.0, 120.0] {
        let capped = run_app(
            &RunConfig::new(AppId::QmcpackDmc, 8 * SEC).with_schedule(ScheduleSpec::Constant(cap)),
        );
        data.push((
            model.corecap(cap),
            (base.steady_rate() - capped.steady_rate()).max(0.0),
        ));
    }
    let (alpha, _) = powermodel::fit::fit_alpha(&model, &data);
    assert!((1.0..=4.0).contains(&alpha), "fitted alpha {alpha:.2}");
}
