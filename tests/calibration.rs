//! Calibration round-trip: the proxy workloads were synthesized from the
//! paper's Table VI characterization; measuring β and MPO back on the
//! simulator (by the paper's own 3300-vs-1600 MHz method) must land on the
//! published values.

use powermodel::beta::beta_from_rates;
use powerprog::prelude::*;

fn characterize(app: AppId, dur: Nanos) -> (f64, f64, f64, f64) {
    let fast = run_app(&RunConfig::new(app, dur));
    let slow = run_app(&RunConfig::new(app, dur).with_fixed_mhz(1600));
    let beta = beta_from_rates(slow.steady_rate(), fast.steady_rate(), 1600.0, 3300.0);
    (beta, fast.mpo(), fast.steady_rate(), fast.mean_power())
}

#[test]
fn lammps_beta_and_mpo_land_on_table_vi() {
    let (beta, mpo, rate, power) = characterize(AppId::Lammps, 10 * SEC);
    assert!((beta - 1.00).abs() <= 0.02, "beta {beta:.3}");
    assert!((mpo - 0.32e-3).abs() / 0.32e-3 < 0.15, "mpo {mpo:.2e}");
    // Fig. 1: flat ~1080 katom-steps/s.
    assert!((rate - 1080.0).abs() < 60.0, "rate {rate:.0}");
    assert!((130.0..170.0).contains(&power), "power {power:.0} W");
}

#[test]
fn stream_beta_and_mpo_land_on_table_vi() {
    let (beta, mpo, rate, _) = characterize(AppId::Stream, 10 * SEC);
    assert!((beta - 0.37).abs() <= 0.05, "beta {beta:.3}");
    assert!((mpo - 50.9e-3).abs() / 50.9e-3 < 0.15, "mpo {mpo:.2e}");
    assert!(
        (14.0..18.0).contains(&rate),
        "rate {rate:.1} it/s, paper ~16/s"
    );
}

#[test]
fn amg_beta_and_mpo_land_on_table_vi() {
    let (beta, mpo, rate, _) = characterize(AppId::Amg, 20 * SEC);
    assert!((beta - 0.52).abs() <= 0.06, "beta {beta:.3}");
    assert!((mpo - 30.1e-3).abs() / 30.1e-3 < 0.30, "mpo {mpo:.2e}");
    // Fig. 1: fluctuates between 2.5 and 3 it/s.
    assert!((2.4..3.1).contains(&rate), "rate {rate:.2} it/s");
}

#[test]
fn qmcpack_dmc_beta_and_mpo_land_on_table_vi() {
    let (beta, mpo, rate, _) = characterize(AppId::QmcpackDmc, 10 * SEC);
    assert!((beta - 0.84).abs() <= 0.05, "beta {beta:.3}");
    assert!((mpo - 3.91e-3).abs() / 3.91e-3 < 0.15, "mpo {mpo:.2e}");
    assert!(
        (14.5..17.5).contains(&rate),
        "rate {rate:.1} blocks/s, paper ~16/s"
    );
}

#[test]
fn openmc_active_beta_and_mpo_land_on_table_vi() {
    let (beta, mpo, rate, _) = characterize(AppId::OpenmcActive, 20 * SEC);
    assert!((beta - 0.93).abs() <= 0.05, "beta {beta:.3}");
    assert!((mpo - 0.20e-3).abs() / 0.20e-3 < 0.20, "mpo {mpo:.2e}");
    // ~100k particles per ~1.05 s batch.
    assert!((85_000.0..105_000.0).contains(&rate), "rate {rate:.0}");
}

#[test]
fn power_ordering_is_physical_across_apps() {
    // Compute-bound codes draw the most package power; every uncapped run
    // sits in a plausible dual-socket band.
    let power = |app: AppId| run_app(&RunConfig::new(app, 6 * SEC)).mean_power();
    let lammps = power(AppId::Lammps);
    let stream = power(AppId::Stream);
    let amg = power(AppId::Amg);
    assert!(lammps > stream, "LAMMPS {lammps:.0} vs STREAM {stream:.0}");
    for (name, p) in [("LAMMPS", lammps), ("STREAM", stream), ("AMG", amg)] {
        assert!((100.0..180.0).contains(&p), "{name} {p:.0} W implausible");
    }
}

#[test]
fn qmcpack_phases_compute_blocks_at_distinct_rates() {
    // Fig. 1 (right): VMC1 > VMC2 > DMC block rates, distinguishable online.
    let run = run_app(&RunConfig::new(AppId::Qmcpack, 30 * SEC));
    let phases: Vec<(f64, &str)> = run
        .record
        .phases
        .iter()
        .map(|&(t, n)| (t as f64 / 1e9, n))
        .collect();
    assert_eq!(
        phases.iter().map(|p| p.1).collect::<Vec<_>>(),
        ["VMC1", "VMC2", "DMC"]
    );
    let rate_between = |a: f64, b: f64| run.progress[0].mean_between(a + 1.5, b - 0.5);
    let v1 = rate_between(phases[0].0, phases[1].0);
    let v2 = rate_between(phases[1].0, phases[2].0);
    let dmc = rate_between(phases[2].0, run.duration_s);
    assert!(v1 > v2 && v2 > dmc, "v1={v1:.1} v2={v2:.1} dmc={dmc:.1}");
}
