//! Integration tests for the cluster layer: the progress-aware arbiter
//! must actually pay off end-to-end (lower makespan than uniform-static
//! under the same global budget, without spending more energy), conserve
//! the budget on every tick, tolerate the PR-1 fault layer taking a
//! node's telemetry out, and degrade exactly — not approximately — to
//! the ideal-barrier schedule when the exchange moves no bytes.

use cluster::{
    ramp_weights, run_cluster, ArbiterConfig, ClusterConfig, CommConfig, CommPattern, NodeSpec,
    Policy, Preset, Topology, WorkloadShape, DEFAULT_DAEMON_PERIOD,
};
use powerprog_core::experiments::cluster as experiment;
use powerprog_core::experiments::hierarchy;
use simnode::faults::{FaultPlan, FaultWindow};
use simnode::time::SEC;

/// The acceptance scenario: on an imbalanced 8-node workload under one
/// global budget, the progress-feedback policy achieves strictly lower
/// makespan than uniform-static, at no extra energy, with budget
/// conservation holding at every arbiter tick of every policy.
#[test]
fn progress_aware_beats_uniform_static_under_the_same_budget() {
    let cfg = experiment::Config::quick();
    let r = experiment::run(&cfg).unwrap();
    let uniform = &r.cell("uniform-static").expect("baseline ran").outcome;
    let feedback = &r.cell("progress-feedback").expect("feedback ran").outcome;

    assert!(
        feedback.makespan_s < uniform.makespan_s,
        "progress-aware arbiter must strictly beat uniform-static: \
         {:.2} s vs {:.2} s",
        feedback.makespan_s,
        uniform.makespan_s
    );
    assert!(
        feedback.energy_j <= uniform.energy_j * 1.05,
        "the win must not come from extra energy: {:.0} J vs {:.0} J",
        feedback.energy_j,
        uniform.energy_j
    );

    // Budget conservation, asserted tick by tick for every policy.
    for cell in &r.cells {
        for tick in cell.outcome.grant_trace.ticks() {
            let total: f64 = tick.granted_w.iter().sum();
            assert!(
                total <= cfg.budget_w + 1e-6,
                "{} round {}: granted {:.2} W over the {:.0} W budget",
                cell.policy,
                tick.round,
                total,
                cfg.budget_w
            );
            for &g in &tick.granted_w {
                assert!(
                    g >= cfg.min_cap_w - 1e-6 && g <= cfg.max_cap_w + 1e-6,
                    "{} round {}: grant {g:.2} W outside clamps",
                    cell.policy,
                    tick.round
                );
            }
        }
    }
}

/// The hierarchical acceptance scenario: on the imbalanced 16-node,
/// 4-rack workload, the rack-tree progress-feedback arbiter strictly
/// beats uniform-static makespan, with Σ ≤ budget holding at *both*
/// levels (leaf grants vs. machine budget, rack sub-budgets vs. machine
/// budget) on every tick.
#[test]
fn hierarchical_feedback_beats_uniform_static_with_two_level_conservation() {
    let cfg = hierarchy::Config::quick();
    let r = hierarchy::run(&cfg).unwrap();
    let uniform = &r.cell("uniform-static").expect("baseline ran").outcome;
    let hier = &r.cell("hier-feedback").expect("tree ran").outcome;

    assert!(
        hier.makespan_s < uniform.makespan_s,
        "rack-tree feedback must strictly beat uniform-static: {:.2} s vs {:.2} s",
        hier.makespan_s,
        uniform.makespan_s
    );

    // Leaf level: every barrier tick of every variant.
    for cell in &r.cells {
        for tick in cell.outcome.grant_trace.ticks() {
            let total: f64 = tick.granted_w.iter().sum();
            assert!(
                total <= cfg.budget_w + 1e-6,
                "{} round {}: leaves granted {:.2} W over the {:.0} W budget",
                cell.name,
                tick.round,
                total,
                cfg.budget_w
            );
        }
    }
    // Rack level: every outer epoch of every hierarchical variant.
    let rack = hier.rack_trace.as_ref().expect("tree traces the racks");
    assert!(!rack.is_empty());
    for tick in rack.ticks() {
        let total: f64 = tick.granted_w.iter().sum();
        assert!(
            total <= cfg.budget_w + 1e-6,
            "round {}: racks granted {:.2} W over the {:.0} W budget",
            tick.round,
            total,
            cfg.budget_w
        );
    }
}

/// A node whose telemetry drops out keeps its last-granted cap verbatim
/// and is excluded from redistribution until it reports again.
#[test]
fn telemetry_dropout_freezes_the_grant_until_the_node_reports_again() {
    let victim = 1usize;
    // Dropout over the middle of the run (node-local clock): the energy
    // counter becomes unreadable, so the collector cannot report.
    let plan = FaultPlan::new(21).telemetry_dropout(FaultWindow::new(SEC, 4 * SEC));
    let mut nodes = vec![
        NodeSpec::new(Preset::Reference, 1.0),
        NodeSpec::new(Preset::Reference, 1.5),
        NodeSpec::new(Preset::Reference, 2.0),
    ];
    nodes[victim] = nodes[victim].clone().with_faults(plan);
    let out = run_cluster(&ClusterConfig {
        nodes,
        iters: 8,
        arbiter: ArbiterConfig {
            budget_w: 240.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy: Policy::ProgressFeedback { gain: 1.0 },
        },
        shape: WorkloadShape::default(),
        daemon_period: DEFAULT_DAEMON_PERIOD,
        comm: CommConfig::none(),
        hierarchy: None,
    })
    .unwrap();

    let silent_rounds: Vec<usize> = out
        .grant_trace
        .ticks()
        .iter()
        .filter(|t| !t.reporting[victim])
        .map(|t| t.round)
        .collect();
    assert!(
        !silent_rounds.is_empty(),
        "the dropout window must actually silence the victim"
    );
    assert!(
        out.grant_trace.ticks().iter().any(|t| t.reporting[victim]),
        "the victim must report again after the window closes"
    );

    // While silent, the victim's grant is frozen bit-for-bit at its
    // previous value (the arbiter may only shrink it if feasibility
    // demanded it, which this generous budget never does).
    for &round in &silent_rounds {
        if round == 0 {
            continue;
        }
        let prev = out.grant_trace.ticks()[round - 1].granted_w[victim];
        let cur = out.grant_trace.ticks()[round].granted_w[victim];
        assert_eq!(
            cur.to_bits(),
            prev.to_bits(),
            "round {round}: silent victim's grant moved ({prev} -> {cur})"
        );
    }

    // The healthy nodes keep being rebalanced meanwhile.
    assert!(out.excluded_node_ticks() == silent_rounds.len());
    assert!(out.min_budget_slack_w() >= -1e-6);
}

/// Determinism end-to-end: the same cluster configuration reproduces the
/// same makespan, energy and grant trace bit-for-bit.
#[test]
fn cluster_runs_are_deterministic() {
    let cfg = ClusterConfig {
        nodes: vec![
            NodeSpec::new(Preset::Reference, 1.0),
            NodeSpec::new(Preset::Leaky(12.0), 1.6),
            NodeSpec::new(Preset::LowBin(2800), 2.1),
        ],
        iters: 3,
        arbiter: ArbiterConfig {
            budget_w: 250.0,
            min_cap_w: 40.0,
            max_cap_w: 130.0,
            policy: Policy::ProgressFeedback { gain: 0.8 },
        },
        shape: WorkloadShape::default(),
        daemon_period: DEFAULT_DAEMON_PERIOD,
        comm: CommConfig {
            alpha_s: 2e-6,
            nic_bw: 1.25e9,
            power_coupling: 0.5,
            pattern: CommPattern::HaloExchange {
                bytes_per_unit: 8.0 * 1024.0 * 1024.0,
            },
            topology: Topology::FlatSwitch,
        },
        hierarchy: None,
    };
    let a = run_cluster(&cfg).unwrap();
    let b = run_cluster(&cfg).unwrap();
    assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.grant_trace.len(), b.grant_trace.len());
    for (ta, tb) in a.grant_trace.ticks().iter().zip(b.grant_trace.ticks()) {
        for (ga, gb) in ta.granted_w.iter().zip(&tb.granted_w) {
            assert_eq!(ga.to_bits(), gb.to_bits());
        }
        for (ca, cb) in ta.comm_s.iter().zip(&tb.comm_s) {
            assert_eq!(ca.to_bits(), cb.to_bits(), "exchange pricing must be pure");
        }
    }
}

/// Workload/cluster edge cases around the exchange phase.
mod comm_edges {
    use super::*;

    fn base(nodes: Vec<NodeSpec>, comm: CommConfig) -> ClusterConfig {
        ClusterConfig {
            nodes,
            iters: 4,
            arbiter: ArbiterConfig {
                budget_w: 480.0,
                min_cap_w: 40.0,
                max_cap_w: 130.0,
                policy: Policy::ProgressFeedback { gain: 1.0 },
            },
            shape: WorkloadShape::default(),
            daemon_period: DEFAULT_DAEMON_PERIOD,
            comm,
            hierarchy: None,
        }
    }

    fn halo(bytes_per_unit: f64) -> CommConfig {
        CommConfig {
            alpha_s: 2e-6,
            nic_bw: 1.25e9,
            power_coupling: 0.5,
            pattern: CommPattern::HaloExchange { bytes_per_unit },
            topology: Topology::FlatSwitch,
        }
    }

    /// A zero-node cluster is a configuration error, rejected with the
    /// offending field named rather than producing a vacuous outcome.
    #[test]
    fn zero_node_cluster_is_rejected() {
        let err = base(vec![], halo(1.0)).validate().unwrap_err();
        assert_eq!(err.what, "ClusterConfig.nodes");
        assert!(err.to_string().contains("at least one node"));
    }

    /// A budget below `n * min_cap` has no feasible allocation; the
    /// validator names the arbiter config instead of letting the run
    /// panic deep inside `PowerArbiter::new`.
    #[test]
    fn infeasible_budget_is_rejected_by_validate() {
        let nodes = vec![NodeSpec::new(Preset::Reference, 1.0); 4];
        let mut cfg = base(nodes, halo(1.0));
        cfg.arbiter.budget_w = 100.0; // 4 nodes at a 40 W floor need 160 W
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.what, "ClusterConfig.arbiter");
        assert!(err.to_string().contains("cannot fund"));
    }

    /// Same for a zero-node decomposition: the weight ramp refuses to
    /// produce an empty roster.
    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_ramp_is_rejected() {
        ramp_weights(0, 1.0, 2.0);
    }

    /// A single rank has nobody to exchange with: the halo pattern
    /// produces no flows and the run equals its ideal-barrier twin
    /// bit for bit, bytes and all.
    #[test]
    fn single_node_cluster_has_no_exchange() {
        let nodes = vec![NodeSpec::new(Preset::Reference, 1.7)];
        let wired = run_cluster(&base(nodes.clone(), halo(64.0 * 1024.0 * 1024.0))).unwrap();
        let ideal = run_cluster(&base(nodes, CommConfig::none())).unwrap();
        assert_eq!(wired.total_bytes(), 0.0);
        assert_eq!(wired.mean_comm_s(), 0.0);
        assert_eq!(wired.makespan_s.to_bits(), ideal.makespan_s.to_bits());
        assert_eq!(wired.energy_j.to_bits(), ideal.energy_j.to_bits());
    }

    /// Zero-byte messages must reproduce the ideal-barrier makespan
    /// *exactly* — the acceptance criterion that guards PR-2 behaviour.
    /// Grants must match bitwise too: the comm-aware controller's
    /// damping factor is exactly 1.0 when `comm_s == 0`.
    #[test]
    fn zero_byte_halo_is_bit_identical_to_the_ideal_barrier() {
        let nodes: Vec<NodeSpec> = ramp_weights(5, 1.0, 2.2)
            .into_iter()
            .map(|w| NodeSpec::new(Preset::Reference, w))
            .collect();
        let zeroed = run_cluster(&base(nodes.clone(), halo(0.0))).unwrap();
        let ideal = run_cluster(&base(nodes, CommConfig::none())).unwrap();
        assert_eq!(zeroed.makespan_s.to_bits(), ideal.makespan_s.to_bits());
        assert_eq!(zeroed.energy_j.to_bits(), ideal.energy_j.to_bits());
        assert_eq!(zeroed.total_bytes(), 0.0);
        for (tz, ti) in zeroed
            .grant_trace
            .ticks()
            .iter()
            .zip(ideal.grant_trace.ticks())
        {
            for (gz, gi) in tz.granted_w.iter().zip(&ti.granted_w) {
                assert_eq!(gz.to_bits(), gi.to_bits(), "round {}", tz.round);
            }
        }
    }
}
