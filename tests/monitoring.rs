//! Integration tests of the progress-monitoring pipeline: the pub-sub
//! transport, the 1 Hz aggregation, the reporting artefacts the paper
//! documents, and the NRM daemon's observation stream.

use powerprog::prelude::*;

/// OpenMC's ~1 report/s batches alias against the 1 s windows: some
/// windows carry zero progress, exactly the artefact in paper Fig. 3.
#[test]
fn openmc_batch_reporting_produces_zero_windows() {
    let run = run_app(&RunConfig::new(AppId::OpenmcActive, 40 * SEC));
    let zeros = run.progress[0].zero_count();
    assert!(zeros > 0, "expected aliasing zeros");
    // But the application-side truth shows no stall: batch gaps stay
    // below ~3 s even with noise.
    assert!(run.channel_stats[0].events as f64 > 0.8 * run.duration_s);
}

/// A fine-grained reporter (LAMMPS) never aliases to zero.
#[test]
fn fine_grained_reporters_have_no_zero_windows() {
    let run = run_app(&RunConfig::new(AppId::Lammps, 20 * SEC));
    assert_eq!(run.progress[0].zero_count(), 0);
}

/// The lossy transport (capacity-bounded subscriber, the class of flaw the
/// paper blames for its zeros) silently drops bursts; the lossless side
/// channel sees everything.
#[test]
fn lossy_transport_drops_bursts_lossless_truth_does_not() {
    let lossy = run_app(&RunConfig::new(AppId::Lammps, 10 * SEC).with_lossy_monitoring(4));
    assert!(lossy.dropped_events > 0, "bursty reporter must overflow");
    let monitor_total: f64 = lossy.progress[0].v.iter().sum();
    let truth = lossy.channel_stats[0].sum;
    assert!(
        monitor_total < truth * 0.5,
        "monitor saw {monitor_total:.0} of {truth:.0}"
    );
}

/// The NRM daemon observes what it programs: its per-tick samples track
/// the schedule, and its measured average power responds within a tick.
#[test]
fn daemon_samples_track_the_schedule() {
    let run = run_app(&RunConfig::new(AppId::Lammps, 30 * SEC).with_schedule(
        ScheduleSpec::LinearDecay {
            uncapped_for: 5 * SEC,
            from_w: 140.0,
            to_w: 60.0,
            ramp: 20 * SEC,
        },
    ));
    let samples = &run.daemon_samples;
    assert!(samples.len() >= 28, "one sample per second");
    // Uncapped lead-in.
    assert!(samples[2].cap_w.is_none());
    // Ramp: caps decrease monotonically once engaged.
    let caps: Vec<f64> = samples.iter().filter_map(|s| s.cap_w).collect();
    assert!(caps.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    assert!((caps.last().unwrap() - 60.0).abs() < 1e-9);
    // Measured power at the end sits near the floor.
    let last = samples.last().unwrap();
    assert!(
        (last.avg_power_w - 60.0).abs() < 8.0,
        "settled at {:.1} W",
        last.avg_power_w
    );
}

/// Multi-channel applications publish independent streams that the
/// monitor separates correctly.
#[test]
fn multi_channel_streams_are_separated() {
    let run = run_app(&RunConfig::new(AppId::Urban, 40 * SEC));
    assert_eq!(run.progress.len(), 2);
    let cfd = run.channel_stats[0].events;
    let ep = run.channel_stats[1].events;
    assert!(
        cfd > 20 * ep.max(1),
        "CFD reports ({cfd}) dwarf EP's ({ep})"
    );
}

/// Progress monitoring has negligible effect on the application: a run
/// with four extra subscribers retires the same work in the same time.
#[test]
fn monitoring_is_non_intrusive() {
    let base = run_app(&RunConfig::new(AppId::Amg, 8 * SEC));
    // The runner already registers monitor subscribers; add a stack of
    // external ones on a fresh run via the lossy path to stress it.
    let watched = run_app(&RunConfig::new(AppId::Amg, 8 * SEC).with_lossy_monitoring(1));
    assert_eq!(
        base.channel_stats[0].events, watched.channel_stats[0].events,
        "application-side work must not depend on the observers"
    );
    assert!((base.total_energy_j - watched.total_energy_j).abs() < 1e-6);
}

/// The paper's future-work "per-processing-element" monitoring: per-rank
/// channels expose the load imbalance Table I's aggregate MIPS hides, and
/// identify the critical-path rank.
#[test]
fn per_rank_channels_expose_the_listing1_imbalance() {
    let mut rc = RunConfig::new(AppId::Listing1PerRank, 10 * SEC);
    rc.ranks = 24;
    let run = run_app(&rc);
    assert!(run.record.all_done);
    assert_eq!(run.progress.len(), 24, "one channel per rank");

    // Per-rank work rates over the whole run.
    let rates: Vec<f64> = run
        .channel_stats
        .iter()
        .map(|s| s.sum / run.duration_s)
        .collect();
    let report = progress::imbalance::analyze(&rates).expect("valid per-rank rates");
    assert_eq!(
        report.critical_rank, 23,
        "the highest rank is on the critical path (paper Listing 1)"
    );
    assert!(
        report.imbalance_factor > 15.0,
        "unequal work spans ~24x: {:.1}",
        report.imbalance_factor
    );
    assert!(
        report.wait_fraction > 0.4,
        "nearly half the aggregate capacity waits at barriers: {:.2}",
        report.wait_fraction
    );
}

/// Fault injection: one rank livelocks mid-run. Hardware metrics stay
/// "healthy" (instructions retire at full speed on every core) while the
/// progress metric flatlines — the failure class that motivates online
/// progress over counters (paper §II).
#[test]
fn progress_detects_a_hang_that_mips_misses() {
    use progress::aggregator::ProgressAggregator;
    use proxyapps::programs::HangAfter;

    let cfg = NodeConfig::default();
    let mut app = build(AppId::Lammps, &cfg, cfg.cores, 1);
    // Wrap rank 3: healthy for ~40 actions (~13 timesteps), then livelock.
    let victim = app.programs.remove(3);
    app.programs.insert(
        3,
        Box::new(HangAfter::new(struct_program_adapter::Adapter(victim), 40)),
    );

    let bus = ProgressBus::new();
    let sub = bus.subscribe(BusConfig::lossless());
    let node = Node::new(cfg);
    let mut driver = Driver::new(node, app.programs, &bus, 1);
    driver.run(8 * SEC, &mut []);

    let agg = ProgressAggregator::new(sub, SEC, None);
    let series = agg.finish(driver.node().now());

    // Progress flatlines after the hang... (window samples carry the
    // window's *end* time, so the first healthy window is at t = 1.0)
    let early = series.mean_between(0.5, 1.5);
    let late = series.mean_between(4.0, 8.0);
    assert!(early > 500.0, "healthy phase reports progress: {early:.0}");
    assert!(late < 1.0, "hung phase must flatline: {late:.2}");

    // ...while the instruction counter says everything is fine: the other
    // 23 ranks spin at the barrier and the victim burns compute, so the
    // node retires instructions at multi-GIPS rates throughout.
    let inst_rate = driver.node().counters().instructions / (driver.node().now() as f64 / 1e9);
    assert!(
        inst_rate > 1e10,
        "MIPS stays 'healthy' during the hang: {inst_rate:.2e} inst/s"
    );
}

/// Adapter so a boxed program can be wrapped by `HangAfter` (which is
/// generic over `Program`).
mod struct_program_adapter {
    use proxyapps::runtime::{Action, Program};

    pub struct Adapter(pub Box<dyn Program>);

    impl Program for Adapter {
        fn next_action(&mut self, rank: usize) -> Action {
            self.0.next_action(rank)
        }
    }
}
