//! Integration tests of the fault-injection framework and the hardened
//! control loop: the headline robustness claims of the repo.
//!
//! 1. Under a seeded MSR fault storm (cap writes failing across the
//!    moment the budget arrives, plus an energy-telemetry dropout), the
//!    naive 1 Hz daemon silently blows the power budget for tens of
//!    seconds; the hardened loop retries, read-back-verifies, fails over
//!    to direct DVFS and holds the budget — at a bounded progress cost.
//! 2. The progress watchdog tells a genuinely hung application (livelocked
//!    ranks, progress flatlined) apart from a lossy monitoring transport
//!    that eats most reports: the first is declared stalled, the second
//!    never is.

use powerprog::prelude::*;
use powerprog::proxyapps::programs::HangAfter;
use powerprog::simnode::hw::{MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT};

const BUDGET_W: f64 = 80.0;

fn storm_plan() -> FaultPlan {
    FaultPlan::new(11)
        // Cap writes fail outright from before the budget arrives (8 s)
        // until 32 s — the naive loop cannot actuate at all in between.
        .write_error(
            MSR_PKG_POWER_LIMIT,
            1.0,
            FaultWindow::new(4 * SEC, 32 * SEC),
        )
        // Energy telemetry drops out mid-storm: the hardened loop's
        // user-space power sensor goes blind but actuation stays sound.
        .read_error(
            MSR_PKG_ENERGY_STATUS,
            1.0,
            FaultWindow::new(16 * SEC, 24 * SEC),
        )
}

fn storm_run(hardened: bool) -> RunArtifacts {
    let schedule = ScheduleSpec::StepAfter {
        lead_in: 8 * SEC,
        cap_w: BUDGET_W,
    };
    let mut cfg = RunConfig::new(AppId::Lammps, 40 * SEC)
        .with_schedule(schedule)
        .with_faults(storm_plan());
    if hardened {
        cfg = cfg.with_resilience(ResilienceConfig::default());
    }
    run_app(&cfg)
}

/// Settling allowance: 8 s lead-in plus 12 s for the one-P-state-per-tick
/// software fallback to walk down the ladder.
const SKIP: usize = 20;

#[test]
fn naive_loop_blows_the_budget_under_the_storm() {
    let naive = storm_run(false);
    assert!(
        naive.actuation_failures() > 10,
        "storm must defeat the naive loop's writes, {} failures",
        naive.actuation_failures()
    );
    let overshoot = naive.max_overshoot_w(BUDGET_W, SKIP);
    assert!(
        overshoot > 25.0,
        "naive loop should violate the budget long past settling, got {overshoot:.1} W"
    );
}

#[test]
fn hardened_loop_holds_the_budget_and_progress_under_the_storm() {
    let hard = storm_run(true);
    let overshoot = hard.max_overshoot_w(BUDGET_W, SKIP);
    assert!(
        overshoot < 10.0,
        "hardened loop must hold the budget after settling, got {overshoot:.1} W"
    );
    assert!(
        hard.fallback_ticks() > 5,
        "the fallback actuator chain should carry the storm, {} ticks",
        hard.fallback_ticks()
    );
    assert!(
        hard.fault_summary.writes_failed > 0 && hard.fault_summary.reads_failed > 0,
        "both fault kinds must actually fire: {:?}",
        hard.fault_summary
    );

    // Progress loss stays bounded: compare against a fault-free baseline
    // under the same budget (same schedule, healthy RAPL).
    let baseline = run_app(&RunConfig::new(AppId::Lammps, 40 * SEC).with_schedule(
        ScheduleSpec::StepAfter {
            lead_in: 8 * SEC,
            cap_w: BUDGET_W,
        },
    ));
    let loss = 1.0 - hard.steady_rate() / baseline.steady_rate();
    assert!(
        loss < 0.15,
        "hardened progress {:.0} vs fault-free {:.0}: {:.0}% loss",
        hard.steady_rate(),
        baseline.steady_rate(),
        loss * 100.0
    );
}

/// Drive a LAMMPS-shaped workload and feed every closed 1 s window (plus
/// the transport's cumulative drop counter) to a watchdog. Returns the
/// verdict sequence and the total transport drops.
fn watch(programs: Vec<Box<dyn Program>>, bus_cfg: BusConfig, seconds: u64) -> (Vec<Health>, u64) {
    let node_cfg = NodeConfig::default();
    let bus = ProgressBus::new();
    let mut driver = Driver::new(Node::new(node_cfg), programs, &bus, 1);
    let source = driver.channel_sources()[0];
    let mut agg = ProgressAggregator::new(bus.subscribe(bus_cfg), SEC, Some(source));
    let mut wd = ProgressWatchdog::new(WatchdogConfig::default());
    let mut verdicts = Vec::new();
    let mut cursor = 0;
    for k in 1..=seconds {
        driver.run(k * SEC, &mut []);
        agg.poll(k * SEC);
        let windows = agg.windows();
        while cursor < windows.len() {
            verdicts.push(wd.observe(&windows[cursor], bus.dropped()));
            cursor += 1;
        }
    }
    (verdicts, bus.dropped())
}

fn lammps_programs(hang_after: Option<u64>) -> Vec<Box<dyn Program>> {
    let node_cfg = NodeConfig::default();
    let app = build(AppId::Lammps, &node_cfg, node_cfg.cores, 1);
    app.programs
        .into_iter()
        .map(|mut p| match hang_after {
            Some(n) => Box::new(HangAfter::new(move |rank: usize| p.next_action(rank), n))
                as Box<dyn Program>,
            None => p,
        })
        .collect()
}

#[test]
fn watchdog_declares_a_genuine_hang_stalled() {
    // Every rank livelocks after ~300 actions: hardware counters stay
    // healthy, progress flatlines — the failure class only the online
    // progress metric catches (paper §II).
    let (verdicts, _) = watch(lammps_programs(Some(300)), BusConfig::lossless(), 20);
    assert!(
        verdicts.first() == Some(&Health::Healthy),
        "reports flow before the hang: {verdicts:?}"
    );
    assert!(
        verdicts.last() == Some(&Health::Stalled),
        "flatline must end in a stall verdict: {verdicts:?}"
    );
    // The verdict escalates monotonically once the hang begins: no
    // Healthy verdict after the first Stalled.
    let first_stall = verdicts.iter().position(|&h| h == Health::Stalled).unwrap();
    assert!(
        verdicts[first_stall..]
            .iter()
            .all(|&h| h == Health::Stalled),
        "no recovery after a genuine hang: {verdicts:?}"
    );
}

#[test]
fn watchdog_never_calls_a_lossy_transport_stalled() {
    // Same healthy workload, but the monitor subscribes through a
    // 2-deep lossy queue that discards the vast majority of reports.
    let (verdicts, dropped) = watch(
        lammps_programs(None),
        BusConfig::lossy(2, DropPolicy::DropOldest),
        20,
    );
    assert!(
        dropped > 100,
        "the lossy queue must actually drop: {dropped}"
    );
    assert!(
        verdicts.iter().all(|&h| h != Health::Stalled),
        "transport loss must never read as an application stall: {verdicts:?}"
    );
}
