//! End-to-end checks of the paper's headline qualitative claims, exercised
//! through the full stack (proxy app → SPMD driver → simulated node →
//! RAPL → NRM daemon → pub-sub monitoring → aggregation).

use powerprog::prelude::*;

/// §II / Table I: MIPS is not correlated with online performance — the
/// imbalanced Listing-1 variant does *half* the work at ~20× the MIPS.
#[test]
fn mips_is_uncorrelated_with_online_performance() {
    let run = |app: AppId| {
        let mut rc = RunConfig::new(app, 10 * SEC);
        rc.ranks = 24;
        run_app(&rc)
    };
    let equal = run(AppId::Listing1Equal);
    let unequal = run(AppId::Listing1Unequal);
    assert!(equal.record.all_done && unequal.record.all_done);

    // Definition 1 (iterations/s) matches: both ~1/s.
    let it_eq: f64 = equal.progress[0].v.iter().sum::<f64>() / equal.duration_s;
    let it_un: f64 = unequal.progress[0].v.iter().sum::<f64>() / unequal.duration_s;
    assert!((it_eq - it_un).abs() < 0.05, "{it_eq} vs {it_un}");

    // Definition 2 (work units/s): equal does ~1.92x the unequal work.
    let w_eq: f64 = equal.progress[1].v.iter().sum::<f64>();
    let w_un: f64 = unequal.progress[1].v.iter().sum::<f64>();
    assert!(
        (w_eq / w_un - 1.92).abs() < 0.1,
        "work ratio {}",
        w_eq / w_un
    );

    // MIPS inverts: the less productive run reports far more instructions.
    assert!(
        unequal.mips() > 8.0 * equal.mips(),
        "unequal {:.0} MIPS vs equal {:.0} MIPS",
        unequal.mips(),
        equal.mips()
    );
}

/// §V / Fig. 3: "the online performance of the application follows the
/// power capping function being applied" — checked end-to-end with the
/// step-function scheme on a Category-1 application.
#[test]
fn progress_follows_the_cap_under_the_step_scheme() {
    let run = run_app(
        &RunConfig::new(AppId::Lammps, 40 * SEC).with_schedule(ScheduleSpec::Step {
            low_w: 70.0,
            period: 20 * SEC,
        }),
    );
    let p = &run.progress[0];
    // High phases: ~0-9 s and ~20-29 s (daemon latency shifts by ~1 s).
    let high = (p.mean_between(3.0, 9.0) + p.mean_between(23.0, 29.0)) / 2.0;
    let low = (p.mean_between(13.0, 19.0) + p.mean_between(33.0, 39.0)) / 2.0;
    assert!(
        high > low * 1.2,
        "uncapped phases ({high:.0}) must outpace capped phases ({low:.0})"
    );
}

/// §V.A / Fig. 2: RAPL is application-aware — under the same cap the
/// compute-bound code runs at a higher core frequency.
#[test]
fn rapl_clocks_compute_bound_codes_higher() {
    let settle = |app: AppId| {
        let run =
            run_app(&RunConfig::new(app, 6 * SEC).with_schedule(ScheduleSpec::Constant(90.0)));
        let f = &run.telemetry.freq;
        f.mean_between(3.0, 6.5)
    };
    let lammps = settle(AppId::Lammps);
    let stream = settle(AppId::Stream);
    assert!(
        lammps > stream + 50.0,
        "LAMMPS {lammps:.0} MHz should exceed STREAM {stream:.0} MHz at 90 W"
    );
}

/// §VI / Fig. 5: direct DVFS beats RAPL for STREAM at comparable power.
#[test]
fn dvfs_beats_rapl_for_stream_at_comparable_power() {
    let rapl = run_app(
        &RunConfig::new(AppId::Stream, 10 * SEC).with_schedule(ScheduleSpec::Constant(95.0)),
    );
    // Find a DVFS point with power at or below the RAPL run's settled power.
    let rapl_power = rapl.settled_power();
    let mut best_dvfs: Option<(f64, f64)> = None;
    for mhz in [1600u32, 2000, 2400, 2800] {
        let run = run_app(&RunConfig::new(AppId::Stream, 10 * SEC).with_fixed_mhz(mhz));
        let p = run.settled_power();
        if p <= rapl_power + 1.0 {
            let candidate = (p, run.steady_rate());
            if best_dvfs.map(|(_, r)| candidate.1 > r).unwrap_or(true) {
                best_dvfs = Some(candidate);
            }
        }
    }
    let (p, r) = best_dvfs.expect("some DVFS point fits under the RAPL power");
    assert!(
        r > rapl.steady_rate(),
        "DVFS at {p:.0} W gives {r:.1} it/s, RAPL at {rapl_power:.0} W gives {:.1}",
        rapl.steady_rate()
    );
}

/// §III.B / Table V: category assignments derive from the questionnaire
/// and Category-3 apps expose no single metric.
#[test]
fn taxonomy_is_consistent_end_to_end() {
    use progress::registry::registry;
    for rec in registry() {
        let derived = rec.answers.derive_category();
        assert!(rec.categories.contains(&derived), "{}", rec.name);
        if rec.primary_category() == Category::Three {
            assert!(rec.metric.is_none());
        }
    }
}

/// §IV.B: reporting granularities match the paper's description — LAMMPS
/// ~20+/s, AMG ~3/s, OpenMC ~1/s.
#[test]
fn reporting_rates_match_the_papers_instrumentation() {
    let reports_per_s = |app: AppId, dur: Nanos| {
        let run = run_app(&RunConfig::new(app, dur));
        run.channel_stats[0].events as f64 / run.duration_s
    };
    let lammps = reports_per_s(AppId::Lammps, 5 * SEC);
    assert!(
        (20.0..35.0).contains(&lammps),
        "LAMMPS reports {lammps:.1}/s, paper says ~20/s"
    );
    let amg = reports_per_s(AppId::Amg, 12 * SEC);
    assert!(
        (1.5..4.0).contains(&amg),
        "AMG reports {amg:.1}/s, paper ~3/s"
    );
    let openmc = reports_per_s(AppId::OpenmcActive, 12 * SEC);
    assert!(
        (0.6..1.2).contains(&openmc),
        "OpenMC reports {openmc:.1}/s, paper ~1/s"
    );
}

/// §II's second envisioned policy: a high-priority job preempts the node's
/// budget; the NRM applies a hard immediate cap and lifts it on departure.
/// Progress must drop during the preemption window and recover after.
#[test]
fn priority_preemption_caps_hard_and_releases() {
    let run = run_app(&RunConfig::new(AppId::QmcpackDmc, 30 * SEC).with_schedule(
        ScheduleSpec::Preemption {
            preempt_at: 10 * SEC,
            hard_cap_w: 60.0,
            release_at: Some(20 * SEC),
        },
    ));
    let p = &run.progress[0];
    let before = p.mean_between(3.0, 10.0);
    let during = p.mean_between(13.0, 20.0);
    let after = p.mean_between(23.0, 30.0);
    assert!(
        during < before * 0.85,
        "hard cap must cut progress: {before:.1} -> {during:.1}"
    );
    assert!(
        after > before * 0.95,
        "departure must restore progress: {after:.1} vs {before:.1}"
    );
    // The daemon samples show the hard cap engaged exactly in the window.
    let capped: Vec<bool> = run
        .daemon_samples
        .iter()
        .map(|s| s.cap_w.is_some())
        .collect();
    assert!(capped.iter().filter(|&&c| c).count() >= 9);
}
