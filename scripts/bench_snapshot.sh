#!/usr/bin/env bash
# Record the bench-regression baseline: run the cluster bench with the
# stub harness's JSON output enabled and wrap the per-bench lines into
# BENCH_cluster.json. Commit the result; scripts/ci.sh --bench-check
# compares fresh minima against it and fails on >50 % regressions
# (BENCH_TOLERANCE overrides).
# 15 samples by default: the min of a larger sample is a much more
# load-robust floor now that the benches run in single-digit ms.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_cluster.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== cargo bench -p powerprog-bench --bench cluster (snapshot)"
CRITERION_JSON="$raw" CRITERION_SAMPLES="${CRITERION_SAMPLES:-15}" \
    cargo bench -q -p powerprog-bench --bench cluster

if [[ ! -s "$raw" ]]; then
    echo "bench_snapshot: no JSON lines produced — harness problem" >&2
    exit 1
fi

{
    echo "["
    # JSONL -> JSON array, comma-joining all but the last line.
    awk 'NR > 1 { print prev "," } { prev = "  " $0 } END { print prev }' "$raw"
    echo "]"
} > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
