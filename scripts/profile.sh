#!/usr/bin/env bash
# Profile the simulation hot path.
#
# With `perf` on the PATH this records the chosen bench binary and prints
# the symbol-level breakdown (plus a flamegraph SVG when the inferno or
# flamegraph tools are installed). Without `perf` it falls back to the
# criterion-stub timing breakdown: the macro-step fast path
# (simnode/step_until_3s, cluster/*) side by side with the exact
# single-quantum reference (node/step_1s from the micro bench), which is
# the ratio the event-horizon stepping optimises.
#
# Usage: scripts/profile.sh [bench-name] [filter]
#        scripts/profile.sh [filter]
#
#   bench-name   bench target to profile under perf (default: cluster)
#   filter       substring selecting which benches inside the target run
#                (CRITERION_FILTER); an argument that names no bench
#                target is taken as a filter on the default target, so
#                `scripts/profile.sh hier_4096n` profiles just the
#                4096-node bench without editing anything.
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-cluster}"
filter="${2:-}"
# First argument that isn't a bench target ⇒ it's a filter on `cluster`.
if [[ -n "${1:-}" && ! -f "crates/bench/benches/${bench}.rs" ]]; then
    filter="$bench"
    bench="cluster"
fi
export CRITERION_FILTER="$filter"

if command -v perf >/dev/null 2>&1; then
    echo "== perf profile of bench '$bench'${filter:+ (filter: $filter)}"
    cargo bench -q -p powerprog-bench --bench "$bench" --no-run
    # Find the freshest bench binary for the target.
    bin="$(ls -t target/release/deps/"${bench}"-* 2>/dev/null |
        grep -v '\.d$' | head -n1)"
    if [[ -z "$bin" ]]; then
        echo "profile.sh: no bench binary for '$bench'" >&2
        exit 1
    fi
    out="target/profile"
    mkdir -p "$out"
    perf record -g --output="$out/perf.data" -- \
        env CRITERION_SAMPLES="${CRITERION_SAMPLES:-5}" "$bin" --bench
    perf report --input="$out/perf.data" --stdio --percent-limit 1 |
        head -n 60
    if command -v inferno-collapse-perf >/dev/null 2>&1 &&
        command -v inferno-flamegraph >/dev/null 2>&1; then
        perf script --input="$out/perf.data" |
            inferno-collapse-perf |
            inferno-flamegraph >"$out/flamegraph.svg"
        echo "wrote $out/flamegraph.svg"
    elif command -v stackcollapse-perf.pl >/dev/null 2>&1 &&
        command -v flamegraph.pl >/dev/null 2>&1; then
        perf script --input="$out/perf.data" |
            stackcollapse-perf.pl |
            flamegraph.pl >"$out/flamegraph.svg"
        echo "wrote $out/flamegraph.svg"
    else
        echo "(no flamegraph tooling found; perf.data kept in $out/)"
    fi
    exit 0
fi

echo "== no perf on PATH: criterion timing breakdown instead"
echo
echo "-- event-horizon fast path (macro-quantum stepping)"
CRITERION_SAMPLES="${CRITERION_SAMPLES:-5}" \
    cargo bench -q -p powerprog-bench --bench "$bench"
if [[ -z "$filter" ]]; then
    echo
    echo "-- exact single-quantum reference (node/step_1s) and subsystem costs"
    CRITERION_SAMPLES="${CRITERION_SAMPLES:-5}" \
        cargo bench -q -p powerprog-bench --bench micro
    echo
    echo "step_until_3s simulates 3 s; node/step_1s simulates 1 s: divide the"
    echo "step_until median by 3 to compare per-simulated-second cost."
fi
