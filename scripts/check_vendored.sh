#!/usr/bin/env bash
# Vendored-dependency audit, in two parts:
#
#  1. every compat/ stub builds standalone (its own Cargo.toml, its own
#     target dir), so a stub can never silently grow a dependency on the
#     workspace or on a crates.io package the offline image lacks;
#  2. no manifest in the workspace depends on a crate that is neither a
#     workspace member nor a vendored stub — the allowlist is derived
#     from the directory layout, not maintained by hand.
#
# Usage: scripts/check_vendored.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== compat stubs build standalone"
for stub in compat/*/; do
    name="$(basename "$stub")"
    echo "   -> $name"
    cargo build -q \
        --manifest-path "$stub/Cargo.toml" \
        --target-dir target/compat-standalone
done

echo "== dependency allowlist"
allow=""
for d in crates/*/ compat/*/; do
    allow="$allow $(basename "$d")"
done
# Package names that differ from their directory names.
allow="$allow powerprog powerprog-core powerprog-bench"

fail=0
for manifest in Cargo.toml crates/*/Cargo.toml compat/*/Cargo.toml; do
    # Dependency names: lines like `foo = ...` or `[dependencies.foo]`
    # inside any [*dependencies*] section of the manifest.
    deps="$(awk '
        /^\[.*dependencies[^.]*\]$/ { insec = 1; next }
        /^\[.*dependencies\.[A-Za-z0-9_-]+\]$/ {
            gsub(/^\[.*dependencies\.|\]$/, ""); print; insec = 0; next
        }
        /^\[/ { insec = 0; next }
        insec && /^[A-Za-z0-9_-]+[[:space:]]*=/ { print $1 }
    ' "$manifest")"
    for dep in $deps; do
        ok=0
        for a in $allow; do
            if [[ "$dep" == "$a" ]]; then
                ok=1
                break
            fi
        done
        if [[ "$ok" -eq 0 ]]; then
            echo "ERROR: $manifest depends on non-vendored crate '$dep'" >&2
            fail=1
        fi
    done
done

if [[ "$fail" -ne 0 ]]; then
    echo "check_vendored: offline build would break." >&2
    exit 1
fi
echo "check_vendored: all dependencies are workspace members or vendored stubs."
