#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
# Usage: scripts/ci.sh [--no-test]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release"
cargo build --workspace --release

if [[ "${1:-}" != "--no-test" ]]; then
    echo "== cargo test"
    cargo test --workspace --release -q
    echo "== cluster bench (test mode)"
    cargo bench -q -p powerprog-bench --bench cluster -- --test
fi

echo "CI gate passed."
