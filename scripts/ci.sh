#!/usr/bin/env bash
# CI gate: formatting, lints, docs, vendored-dependency audit, build,
# tests, and (optionally) the bench-regression check.
#
# Usage: scripts/ci.sh [--no-test] [--bench-check] [--soak] [--help]
#
#   --no-test      skip the test suite and bench smoke run (lints+build)
#   --soak         run ~60 s (SOAK_SECONDS overrides) of seeded chaos
#                  load generation against the arbiter daemon: every run
#                  drives clean/overload/hostile/crash/sharded scenarios
#                  — lossy+partitioned wires and one kill-9/snapshot
#                  restore each — under a fresh seed. Fails on any
#                  panic, deadlock (via timeout), or Σ-grants>budget /
#                  hold-last-grant breach (the table's invariant
#                  column). Also runs the shard-soak step: one seeded
#                  4-shard chaos run (one daemon kill-9'd and restored
#                  mid-run) executed twice and diffed bit for bit — the
#                  sum_fp column carries the whole machine-wide Σ-grants
#                  trace, so the diff catches any nondeterminism in the
#                  sharded path.
#   --bench-check  additionally compare fresh cluster-bench minima
#                  against the committed BENCH_cluster.json baseline and
#                  fail on regressions beyond BENCH_TOLERANCE (default
#                  0.5 = 50 %). Minima (not medians): a real regression
#                  slows every sample, while background load only
#                  inflates some — min-of-samples is the load-robust
#                  estimator now that the macro-step fast path has the
#                  benches down in the single-digit-ms range. The
#                  generous default is deliberate: on shared or
#                  virtualized runners wall-clock varies 1.5x run to
#                  run, and the gate's job is catching the
#                  order-of-magnitude regression class (losing the
#                  macro-step win), not 10 % drifts.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
    sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
}

run_tests=1
bench_check=0
soak=0
for arg in "$@"; do
    case "$arg" in
    --no-test) run_tests=0 ;;
    --bench-check) bench_check=1 ;;
    --soak) soak=1 ;;
    -h | --help)
        usage
        exit 0
        ;;
    *)
        echo "ci.sh: unknown argument '$arg'" >&2
        echo >&2
        usage >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy --features rapl -D warnings"
# The Linux RAPL backend is feature-gated (it needs a privileged host to
# *construct*, but must always *compile*); lint it in the same gate.
cargo clippy -p simnode --features rapl --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== vendored-dependency audit"
scripts/check_vendored.sh

echo "== cargo build --release"
cargo build --workspace --release

if [[ "$run_tests" -eq 1 ]]; then
    echo "== cargo test"
    cargo test --workspace --release -q
    echo "== cargo test -p simnode --features rapl"
    # The rapl feature's probe path degrades to MsrError::Unsupported on
    # machines without /dev/cpu/*/msr, so this runs anywhere.
    cargo test -p simnode --release --features rapl -q
    echo "== cluster bench (test mode)"
    cargo bench -q -p powerprog-bench --bench cluster -- --test
    echo "== repro sched determinism (same seed, bit-identical CSVs)"
    # The scheduler's whole pipeline — trace, admission, arbiter ticks —
    # must replay bit for bit under a fixed seed; diff catches any drift.
    sched_a="$(mktemp -d)"
    sched_b="$(mktemp -d)"
    target/release/repro sched --quick --seed 11 --out "$sched_a" >/dev/null
    target/release/repro sched --quick --seed 11 --out "$sched_b" >/dev/null
    diff -r "$sched_a" "$sched_b" || {
        echo "ci.sh: repro sched is not deterministic under a fixed seed" >&2
        exit 1
    }
    rm -rf "$sched_a" "$sched_b"
    echo "== repro cluster golden diff (backend refactor bit-identity)"
    # tests/golden/cluster_quick holds the CSVs the seeded quick cluster
    # run produced *before* the MsrBackend boundary existed. The default
    # SimBackend must keep reproducing them bit for bit: any drift means
    # the trait refactor (or a later backend change) perturbed the
    # closed-form register file.
    golden_out="$(mktemp -d)"
    target/release/repro cluster --quick --out "$golden_out" >/dev/null
    diff -r tests/golden/cluster_quick "$golden_out" || {
        echo "ci.sh: repro cluster --quick drifted from the pre-refactor golden CSVs" >&2
        exit 1
    }
    rm -rf "$golden_out"
fi

if [[ "$soak" -eq 1 ]]; then
    budget="${SOAK_SECONDS:-60}"
    cargo build -q --release -p powerprog-core

    echo "== shard-soak (seeded 4-shard crash run, replayed and diffed bit for bit)"
    shard_a="$(mktemp -d)"
    shard_b="$(mktemp -d)"
    for dir in "$shard_a" "$shard_b"; do
        timeout 120 target/release/repro loadgen --quick --shards 4 --seed 7 --out "$dir" >/dev/null || {
            echo "ci.sh: shard-soak run panicked, hung, or failed" >&2
            exit 1
        }
    done
    if grep -q "VIOLATED" "$shard_a/loadgen.csv"; then
        echo "ci.sh: shard-soak breached an invariant" >&2
        cat "$shard_a/loadgen.csv" >&2
        exit 1
    fi
    # The CSV's sum_fp column fingerprints every tick's machine-wide
    # Σ grants, so this diff is a bit-for-bit replay check of the whole
    # sharded crash/recovery run, not just its summary counters.
    diff -r "$shard_a" "$shard_b" || {
        echo "ci.sh: sharded loadgen is not deterministic under a fixed seed" >&2
        exit 1
    }
    rm -rf "$shard_a" "$shard_b"

    echo "== soak (${budget} s of seeded chaos loadgen)"
    deadline=$((SECONDS + budget))
    seed=1
    while ((SECONDS < deadline)); do
        # timeout converts a deadlocked run into a hard failure; a panic
        # already exits nonzero on its own.
        out="$(timeout 120 target/release/repro loadgen --seed "$seed")" || {
            echo "ci.sh: soak run with seed $seed panicked, hung, or failed" >&2
            exit 1
        }
        if grep -q "VIOLATED" <<<"$out"; then
            echo "ci.sh: soak run with seed $seed breached an invariant" >&2
            echo "$out" >&2
            exit 1
        fi
        seed=$((seed + 1))
    done
    echo "soak passed: $((seed - 1)) chaos runs, every invariant held"
fi

if [[ "$bench_check" -eq 1 ]]; then
    echo "== bench-regression check (tolerance ${BENCH_TOLERANCE:-0.5})"
    baseline="BENCH_cluster.json"
    if [[ ! -f "$baseline" ]]; then
        echo "ci.sh: missing $baseline — run scripts/bench_snapshot.sh and commit it" >&2
        exit 1
    fi
    fresh="$(mktemp)"
    trap 'rm -f "$fresh"' EXIT
    # CRITERION_FILTER is explicitly cleared: a filter leaked from the
    # environment would skip benches, and every skipped bench would read
    # as GONE below — a confusing way to fail a correct tree.
    CRITERION_FILTER="" CRITERION_JSON="$fresh" \
        CRITERION_SAMPLES="${CRITERION_SAMPLES:-15}" \
        cargo bench -q -p powerprog-bench --bench cluster
    if [[ ! -s "$fresh" ]]; then
        echo "ci.sh: bench run produced no results — harness problem" >&2
        exit 1
    fi
    # Compare per-bench minima: fail when fresh > baseline * (1 + tol).
    # A bench present in the baseline but absent from the run is GONE
    # and fails outright: deleting (or renaming) a bench must force a
    # deliberate re-snapshot, never silently shrink the gate.
    # Both files carry one {"name":...,"min_s":...} object per bench
    # (the baseline wraps them in a JSON array; the field layout is ours,
    # so field-anchored extraction is reliable).
    awk -v tol="${BENCH_TOLERANCE:-0.5}" '
        function fields(line) {
            match(line, /"name":"[^"]*"/)
            name = substr(line, RSTART + 8, RLENGTH - 9)
            match(line, /"min_s":[0-9.eE+-]+/)
            low = substr(line, RSTART + 8, RLENGTH - 8) + 0
        }
        FNR == NR {
            if ($0 ~ /"name"/) { fields($0); base[name] = low }
            next
        }
        /"name"/ {
            fields($0)
            if (!(name in base)) {
                printf "NEW   %-48s min %.6fs (no baseline)\n", name, low
                next
            }
            ratio = low / base[name]
            status = (ratio > 1 + tol) ? "FAIL" : "ok"
            printf "%-5s %-48s min %.6fs vs %.6fs (x%.2f)\n", \
                status, name, low, base[name], ratio
            if (ratio > 1 + tol) bad = 1
            seen[name] = 1
        }
        END {
            gone = 0
            for (n in base) {
                if (!(n in seen)) {
                    printf "GONE  %-48s benched in baseline only\n", n
                    gone++
                    bad = 1
                }
            }
            if (gone) {
                printf "%d baseline bench(es) missing from the run — ", gone
                print "re-snapshot deliberately or restore them"
            }
            exit bad ? 1 : 0
        }
    ' "$baseline" "$fresh" || {
        echo "ci.sh: bench regression beyond ${BENCH_TOLERANCE:-0.5}, or a baseline bench missing from the run" >&2
        exit 1
    }
fi

echo "CI gate passed."
