//! Job-level power distribution (paper §II): the Argo hierarchy hands a
//! *job* a power budget; the job manager divides it across nodes
//! "according to application characteristics and node variability" — and
//! progress monitoring is what makes an informed division possible.
//!
//! Three simulated nodes run LAMMPS; one has a leakier chip
//! (manufacturing variability: +18% switched capacitance, so it needs
//! more watts for the same frequency). Under a tight job budget, an
//! application-agnostic equal split leaves the leaky node lagging — and
//! for a bulk-synchronous job the whole job runs at the slowest node's
//! pace. The progress-aware policy watches normalized progress and moves
//! watts to the laggard.
//!
//! ```text
//! cargo run --release --example job_power_manager
//! ```

use nrm::job::{settled_job_progress, JobPolicy, JobPowerManager, ManagedNode};
use powerprog::core::jobsim::SimNode;
use powerprog::prelude::*;

fn build_fleet() -> Vec<SimNode> {
    let normal = NodeConfig::default();
    let mut leaky = normal.clone();
    leaky.core_power.c_dyn *= 1.18;

    println!("measuring per-node uncapped baselines...");
    let base_normal = SimNode::measure_baseline(&normal, AppId::Lammps, 1, 5 * SEC);
    let base_leaky = SimNode::measure_baseline(&leaky, AppId::Lammps, 1, 5 * SEC);
    println!("  normal chip: {base_normal:.0} katom-steps/s");
    println!("  leaky chip : {base_leaky:.0} katom-steps/s (same speed uncapped, more watts)\n");

    vec![
        SimNode::new(normal.clone(), AppId::Lammps, 11, base_normal).with_epoch(2 * SEC),
        SimNode::new(normal, AppId::Lammps, 12, base_normal).with_epoch(2 * SEC),
        SimNode::new(leaky, AppId::Lammps, 13, base_leaky).with_epoch(2 * SEC),
    ]
}

fn run(policy: JobPolicy, label: &str) -> f64 {
    let mut nodes = build_fleet();
    let mut refs: Vec<&mut dyn ManagedNode> = nodes
        .iter_mut()
        .map(|n| n as &mut dyn ManagedNode)
        .collect();
    // Three nodes wanting ~450 W get 270 W.
    let mgr = JobPowerManager::new(270.0, policy);
    let trace = mgr.run(&mut refs, 10);

    println!("--- {label} ---");
    println!(
        "{:>5} {:>22} {:>26} {:>8}",
        "epoch", "caps (W)", "normalized progress", "job"
    );
    for (i, e) in trace.iter().enumerate() {
        let caps: Vec<String> = e.caps_w.iter().map(|c| format!("{c:.0}")).collect();
        let norm: Vec<String> = e.normalized.iter().map(|p| format!("{p:.2}")).collect();
        println!(
            "{:>5} {:>22} {:>26} {:>8.2}",
            i,
            caps.join("/"),
            norm.join("/"),
            e.job_progress
        );
    }
    let settled = settled_job_progress(&trace);
    println!("settled job progress: {settled:.3}\n");
    settled
}

fn main() {
    println!("Job budget: 270 W over 3 nodes (one leaky chip), LAMMPS everywhere.\n");
    let equal = run(JobPolicy::EqualSplit, "equal split (application-agnostic)");
    let aware = run(
        JobPolicy::ProgressAware { gain: 1.5 },
        "progress-aware (moves watts to the laggard)",
    );
    println!(
        "progress-aware improves bulk-synchronous job progress by {:.1}%",
        100.0 * (aware / equal - 1.0)
    );
    println!("— exactly why the paper wants progress to be monitorable online.");
}
