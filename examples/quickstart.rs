//! Quickstart: run a proxy application on the simulated node, watch its
//! online progress, cap the node, and compare the measured impact with
//! the paper's model (Eq. 7).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use powerprog::prelude::*;

fn main() {
    // --- 1. Run LAMMPS uncapped for 8 simulated seconds. -----------------
    let uncapped = run_app(&RunConfig::new(AppId::Lammps, 8 * SEC));
    let r_max = uncapped.steady_rate();
    let p_max = uncapped.mean_power();
    println!("LAMMPS uncapped:");
    println!("  progress : {r_max:.0} katom-timesteps/s");
    println!("  power    : {p_max:.1} W package");
    println!("  MIPS     : {:.0}", uncapped.mips());
    println!("  MPO      : {:.2}e-3", uncapped.mpo() * 1e3);

    // --- 2. Apply a 90 W RAPL package cap and measure again. -------------
    let cap_w = 90.0;
    let capped = run_app(
        &RunConfig::new(AppId::Lammps, 8 * SEC).with_schedule(ScheduleSpec::Constant(cap_w)),
    );
    let r_capped = capped.steady_rate();
    println!("\nLAMMPS under a {cap_w:.0} W cap:");
    println!("  progress : {r_capped:.0} katom-timesteps/s");
    println!(
        "  power    : {:.1} W package (settled)",
        capped.settled_power()
    );

    // --- 3. What did the paper's model predict? --------------------------
    // β = 1.00 for LAMMPS (Table VI); α = 2 (the paper's choice);
    // P_coremax is estimated as β times the uncapped package power (Eq. 5).
    let model = ProgressModel::from_uncapped_run(1.0, PAPER_ALPHA, p_max, r_max);
    let predicted = model.predict_rate(cap_w);
    let measured_delta = r_max - r_capped;
    let predicted_delta = model.predict_delta(cap_w);
    println!("\nPaper model (Eq. 7), alpha = 2:");
    println!("  predicted rate under cap : {predicted:.0} katom-timesteps/s");
    println!(
        "  change in progress       : measured {measured_delta:.0}, predicted {predicted_delta:.0} ({:+.1}% error)",
        100.0 * (predicted_delta - measured_delta) / measured_delta
    );

    // --- 4. The inverse query the paper motivates (§VI): what cap
    //        sustains 90% of full progress? ------------------------------
    let target = 0.9 * r_max;
    match model.required_cap_for_rate(target) {
        Some(w) => println!("\nTo sustain {target:.0} katom-steps/s (90%), cap at {w:.1} W"),
        None => println!("\nNo cap can sustain that rate"),
    }
}
