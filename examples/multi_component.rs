//! Category-3 applications and the composition extension (paper §III.B,
//! §VI.3).
//!
//! URBAN couples a fast CFD solver with a slow building-energy simulation
//! ("timescales that are orders of magnitude apart"); no single metric is
//! meaningful. The paper's future-work suggestion — "modeling progress as
//! a weighted combination of the progress of individual components" — is
//! implemented in `nrm::composition`; this example shows why it is needed:
//! under a power cap, a CFD-only view and an EnergyPlus-only view disagree
//! wildly, while the composite (and bottleneck) views behave sensibly.
//!
//! ```text
//! cargo run --release --example multi_component
//! ```

use nrm::composition::CompositeProgress;
use powerprog::prelude::*;

fn channel_rates(run: &powerprog::core::runner::RunArtifacts) -> Vec<f64> {
    run.channel_stats
        .iter()
        .map(|s| s.exact_rate().unwrap_or(0.0))
        .collect()
}

fn main() {
    let duration = 120 * SEC;

    // --- Baseline: URBAN uncapped. -----------------------------------------
    let base = run_app(&RunConfig::new(AppId::Urban, duration));
    let baseline = channel_rates(&base);
    println!("URBAN uncapped ({} s simulated):", duration / SEC);
    println!("  CFD steps/s        : {:.3}", baseline[0]);
    println!("  building steps/s   : {:.4}", baseline[1]);
    println!(
        "  timescale ratio    : {:.0}x apart",
        baseline[0] / baseline[1].max(1e-9)
    );

    // --- Capped run. --------------------------------------------------------
    let cap = 70.0;
    let capped =
        run_app(&RunConfig::new(AppId::Urban, duration).with_schedule(ScheduleSpec::Constant(cap)));
    let rates = channel_rates(&capped);
    println!("\nURBAN under a {cap:.0} W cap:");
    println!("  CFD steps/s        : {:.3}", rates[0]);
    println!("  building steps/s   : {:.4}", rates[1]);

    // --- Single-metric views vs composed progress. --------------------------
    let cfd_view = rates[0] / baseline[0];
    let ep_view = rates[1] / baseline[1];
    let comp = CompositeProgress::new(&[1.0, 1.0], &baseline);
    println!("\nprogress views (1.0 = full speed):");
    println!("  CFD-only metric    : {cfd_view:.2}");
    println!("  EnergyPlus metric  : {ep_view:.2}");
    println!("  composite (equal)  : {:.2}", comp.fraction(&rates));
    println!("  bottleneck         : {:.2}", comp.bottleneck(&rates));

    // --- Why the composition matters operationally. --------------------------
    // The components report at timescales 50x apart: a 1 Hz power manager
    // watching only the building-energy metric sees a *stale* value almost
    // every window, while the CFD metric alone ignores half the science.
    // The composite normalizes each channel against its own baseline, so
    // it is both timely (driven by the fast channel) and complete.
    let ep_reports = capped.channel_stats[1].events;
    let cfd_reports = capped.channel_stats[0].events;
    let ep_zero_windows = capped.progress[1].zero_count();
    let windows = capped.progress[1].len();
    println!("\nreporting timescales over the capped run:");
    println!("  CFD reports        : {cfd_reports}");
    println!("  EnergyPlus reports : {ep_reports}");
    println!(
        "  EP-empty windows   : {ep_zero_windows}/{windows} one-second windows carry no EP report"
    );

    // --- HACC: unreliable single-metric progress. ---------------------------
    let hacc = run_app(&RunConfig::new(AppId::Hacc, 60 * SEC));
    let s = &hacc.progress[0];
    println!("\nHACC timesteps/s over 1 s windows (Category 3):");
    println!(
        "  mean {:.2}, min {:.2}, max {:.2}, CV {:.2}",
        s.mean(),
        s.min(),
        s.max(),
        s.cv()
    );
    println!(
        "  the per-window rate swings between {:.0} and {:.0} within one",
        s.min(),
        s.max()
    );
    println!("  run — \"the number of timesteps per second cannot be used to");
    println!("  measure online performance reliably\" (paper §III.A).");
}
