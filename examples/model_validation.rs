//! Model validation in miniature (paper §VI / Fig. 4): characterize an
//! application (β via the 3300-vs-1600 MHz method, MPO from counters),
//! then sweep package caps and compare the measured change in progress
//! with the Eq. 7 prediction — including the α-fitting extension the
//! paper leaves as future work.
//!
//! ```text
//! cargo run --release --example model_validation [app]
//! ```
//! where `app` is one of `lammps|stream|amg|qmcpack|openmc` (default
//! `qmcpack`).

use powermodel::fit::fit_alpha;
use powerprog::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "qmcpack".into());
    let app = match which.as_str() {
        "lammps" => AppId::Lammps,
        "stream" => AppId::Stream,
        "amg" => AppId::Amg,
        "qmcpack" => AppId::QmcpackDmc,
        "openmc" => AppId::OpenmcActive,
        other => {
            eprintln!("unknown app '{other}', use lammps|stream|amg|qmcpack|openmc");
            std::process::exit(2);
        }
    };

    // --- Characterize: β from two frequencies, exactly like the paper. ---
    let fast = run_app(&RunConfig::new(app, 15 * SEC));
    let slow = run_app(&RunConfig::new(app, 15 * SEC).with_fixed_mhz(1600));
    let beta =
        powermodel::beta::beta_from_rates(slow.steady_rate(), fast.steady_rate(), 1600.0, 3300.0);
    println!("characterization of {which}:");
    println!("  beta = {beta:.2}   MPO = {:.2}e-3", fast.mpo() * 1e3);
    println!(
        "  r_max = {:.2} units/s   uncapped package = {:.1} W\n",
        fast.steady_rate(),
        fast.mean_power()
    );

    let model =
        ProgressModel::from_uncapped_run(beta, PAPER_ALPHA, fast.mean_power(), fast.steady_rate());

    // --- Cap sweep. -------------------------------------------------------
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "cap W", "corecap W", "measured dP", "Eq.7 dP", "error %"
    );
    let mut data = Vec::new();
    for cap in [50.0, 70.0, 90.0, 110.0, 130.0] {
        let capped =
            run_app(&RunConfig::new(app, 15 * SEC).with_schedule(ScheduleSpec::Constant(cap)));
        let measured = (fast.steady_rate() - capped.steady_rate()).max(0.0);
        let predicted = model.predict_delta(cap);
        let err = if measured > 0.02 * model.r_max {
            format!("{:+.1}", 100.0 * (predicted - measured) / measured)
        } else {
            "-".into()
        };
        println!(
            "{:>8.0} {:>10.1} {:>12.3} {:>12.3} {:>9}",
            cap,
            model.corecap(cap),
            measured,
            predicted,
            err
        );
        data.push((model.corecap(cap), measured));
    }

    // --- α fitting (the paper fixes α = 2; §VI.3 suggests fitting). ------
    let (alpha, sse) = fit_alpha(&model, &data);
    println!("\nfitted alpha = {alpha:.2} (paper fixes 2.0); SSE = {sse:.4}");
    println!("the paper observed the effective alpha drifting between 1 and 4");
    println!("depending on the cap range — the simulator's voltage curve");
    println!("reproduces that drift (see simnode::power::CorePowerConfig).");
}
