//! The paper's *envisioned* NRM policy (§II): "in response to an
//! increasing system load, the NRM receives gradually decreasing power
//! budgets and chooses the optimal strategy that respects the power budget
//! with the least impact on performance."
//!
//! With progress monitoring and the Eq. 7 model in hand, this becomes
//! computable. For STREAM the example also shows the Fig. 5 pitfall: the
//! analytic model is optimistic about RAPL, so the policy calibrates a
//! *measured* RAPL response curve first and picks DVFS where it is
//! measurably better.
//!
//! ```text
//! cargo run --release --example nrm_policies
//! ```

use nrm::policies::{choose_strategy, FreqPowerPoint, RateCurve};
use powerprog::prelude::*;

fn main() {
    // --- Characterize STREAM. ---------------------------------------------
    let base = run_app(&RunConfig::new(AppId::Stream, 12 * SEC));
    let r_max = base.steady_rate();
    let p_max = base.mean_power();
    let model = ProgressModel::from_uncapped_run(0.37, PAPER_ALPHA, p_max, r_max);
    println!("STREAM: r_max = {r_max:.1} it/s, uncapped {p_max:.0} W\n");

    // --- Calibrate the two techniques by measurement. ----------------------
    println!("calibrating DVFS frequency/power curve...");
    let mut freq_power = Vec::new();
    for mhz in [1200u32, 1800, 2400, 3000, 3300] {
        let run = run_app(&RunConfig::new(AppId::Stream, 8 * SEC).with_fixed_mhz(mhz));
        freq_power.push(FreqPowerPoint {
            f_mhz: mhz as f64,
            package_w: run.mean_power(),
        });
        println!(
            "  {mhz} MHz -> {:.1} W, {:.1} it/s",
            run.mean_power(),
            run.steady_rate()
        );
    }

    println!("calibrating measured RAPL response...");
    let mut rapl_points = Vec::new();
    for cap in [60.0, 80.0, 100.0, 120.0] {
        let run = run_app(
            &RunConfig::new(AppId::Stream, 8 * SEC).with_schedule(ScheduleSpec::Constant(cap)),
        );
        rapl_points.push((cap, run.steady_rate()));
        println!("  cap {cap:.0} W -> {:.1} it/s", run.steady_rate());
    }
    let rapl_curve = RateCurve::new(rapl_points);

    // --- Budget ramp-down: pick a strategy per budget. ---------------------
    println!("\nbudget ramp-down (system load increasing):");
    println!(
        "{:>9} {:>12} {:>12} {:>14}",
        "budget W", "strategy", "setting", "pred. it/s"
    );
    for budget in [140.0, 120.0, 105.0, 95.0, 85.0, 70.0, 55.0] {
        let s = choose_strategy(&model, &freq_power, 3300.0, budget, Some(&rapl_curve));
        let setting = match s.dvfs_mhz {
            Some(mhz) => format!("{mhz:.0} MHz"),
            None => "PKG cap".into(),
        };
        println!(
            "{:>9.0} {:>12} {:>12} {:>14.1}",
            budget,
            format!("{:?}", s.actuator),
            setting,
            s.predicted_rate
        );
    }

    println!("\nwithin DVFS's applicable power range the policy pins a frequency");
    println!("(better measured progress per watt for STREAM, paper Fig. 5);");
    println!("below the f_min power floor only RAPL can enforce the budget.");
}
