//! Live, cross-thread progress monitoring.
//!
//! The paper's setup runs the application and the monitoring daemon as
//! separate OS processes connected by ZeroMQ pub-sub. This example is the
//! in-process equivalent: the simulation runs on one thread, publishing
//! progress to the bus; a monitor thread subscribes, aggregates into 1 s
//! windows, and prints a live ticker — while the NRM (driven inside the
//! simulation) walks the cap down a linear-decay schedule.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use nrm::actuator::ActuatorKind;
use nrm::daemon::NrmDaemon;
use nrm::scheme::LinearDecay;
use powerprog::prelude::*;
use progress::aggregator::ProgressAggregator;
use simnode::agent::SimAgent;

fn main() {
    let sim_seconds: u64 = 30;
    let bus = ProgressBus::new();
    let sub = bus.subscribe(BusConfig::lossless());

    // Shared simulated clock so the monitor can close windows.
    let sim_now = Arc::new(AtomicU64::new(0));

    // --- Simulation thread: QMCPACK DMC + NRM daemon. ---------------------
    let sim_bus = bus.clone();
    let sim_clock = Arc::clone(&sim_now);
    let sim = thread::spawn(move || {
        let cfg = NodeConfig::default();
        let app = build(AppId::QmcpackDmc, &cfg, cfg.cores, 1);
        let channels = app.channels();
        let node = Node::new(cfg);
        let mut driver = Driver::new(node, app.programs, &sim_bus, channels);
        let mut daemon = NrmDaemon::new(
            Box::new(LinearDecay {
                uncapped_for: 5 * SEC,
                from_w: 150.0,
                to_w: 60.0,
                ramp: 20 * SEC,
            }),
            ActuatorKind::Rapl,
        );
        for s in 1..=sim_seconds {
            let mut agents: Vec<&mut dyn SimAgent> = vec![&mut daemon];
            driver.run(s * SEC, &mut agents);
            sim_clock.store(driver.node().now(), Ordering::Release);
            // Pace the simulation so the ticker reads like a live system
            // (the simulator itself runs ~100x faster than real time).
            thread::sleep(Duration::from_millis(120));
        }
        sim_clock.store(u64::MAX, Ordering::Release);
        let samples = daemon.samples;
        (driver.node().total_energy(), samples)
    });

    // --- Monitor thread: aggregate + ticker. -------------------------------
    let mon_clock = Arc::clone(&sim_now);
    let monitor = thread::spawn(move || {
        let mut agg = ProgressAggregator::new(sub, SEC, None);
        let mut printed = 0usize;
        loop {
            let now = mon_clock.load(Ordering::Acquire);
            let done = now == u64::MAX;
            agg.poll(if done { sim_seconds * SEC } else { now });
            let windows = agg.windows();
            while printed < windows.len() {
                let w = windows[printed];
                println!(
                    "t={:>3} s  progress = {:>5.1} blocks/s",
                    w.start / SEC + 1,
                    w.sum
                );
                printed += 1;
            }
            if done {
                break;
            }
            thread::sleep(Duration::from_millis(40));
        }
        printed
    });

    let (energy, samples) = sim.join().expect("simulation thread");
    let windows = monitor.join().expect("monitor thread");

    println!("\nsimulated {sim_seconds} s; monitor saw {windows} windows live");
    println!("total package energy: {:.1} kJ", energy / 1e3);
    let capped = samples.iter().filter(|s| s.cap_w.is_some()).count();
    println!("NRM ticks: {} ({} capped)", samples.len(), capped);
}
