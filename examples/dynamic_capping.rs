//! Dynamic power capping (paper §V): run QMCPACK's DMC phase under the
//! three dynamic schemes — linearly-decreasing, step-function and
//! jagged-edge — applied by the NRM daemon once per second, and show that
//! online progress follows the capping function (paper Fig. 3).
//!
//! ```text
//! cargo run --release --example dynamic_capping
//! ```

use powerprog::prelude::*;

/// Crude ASCII sparkline for a series, normalized to its own range.
fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '█' // uncapped samples render as the top level
            } else if hi > lo {
                GLYPHS[(((v - lo) / (hi - lo)) * 7.0).round() as usize]
            } else {
                GLYPHS[3]
            }
        })
        .collect()
}

fn run_scheme(name: &str, schedule: ScheduleSpec) {
    let duration = 60 * SEC;
    let run = run_app(&RunConfig::new(AppId::QmcpackDmc, duration).with_schedule(schedule));

    println!("--- {name} ---");
    println!("cap (W)  : {}", sparkline(&run.telemetry.cap.v));
    println!("power (W): {}", sparkline(&run.telemetry.power.v));
    println!("progress : {}", sparkline(&run.progress[0].v));
    println!(
        "  progress range {:.1}..{:.1} blocks/s over {} one-second windows\n",
        run.progress[0].min(),
        run.progress[0].max(),
        run.progress[0].len()
    );
}

fn main() {
    println!("QMCPACK (DMC) under the paper's three dynamic capping schemes\n");

    run_scheme(
        "linearly decreasing (uncapped, then ramp 150 W -> 60 W)",
        ScheduleSpec::LinearDecay {
            uncapped_for: 10 * SEC,
            from_w: 150.0,
            to_w: 60.0,
            ramp: 40 * SEC,
        },
    );
    run_scheme(
        "step function (uncapped <-> 60 W, 20 s period)",
        ScheduleSpec::Step {
            low_w: 60.0,
            period: 20 * SEC,
        },
    );
    run_scheme(
        "jagged edge (sawtooth 150 W -> 60 W every 20 s)",
        ScheduleSpec::Jagged {
            high_w: 150.0,
            low_w: 60.0,
            decay: 20 * SEC,
        },
    );

    println!("The progress line tracks the cap line in every scheme — the");
    println!("paper's central observation (\"the online performance of the");
    println!("application follows the power capping function being applied\").");
}
