//! Offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros — as a
//! small wall-clock harness: a fixed warm-up iteration, then `samples`
//! timed iterations, reporting median/mean/min per-iteration time. No
//! statistics engine, no HTML reports; enough to smoke-run every bench
//! and eyeball regressions offline.
//!
//! Environment knobs:
//!
//! - `CRITERION_SAMPLES` — timed samples per bench (default 3). When
//!   set it is authoritative: in-bench `sample_size` calls are ignored,
//!   so the bench-regression gate can raise the count for a stable
//!   min-of-samples floor;
//! - `CRITERION_JSON` — when set to a path, each bench also appends one
//!   JSON line `{"name","median_s","mean_s","min_s","samples"}` to that
//!   file — the machine-readable feed `scripts/bench_snapshot.sh` and
//!   the CI bench-regression gate consume.

use std::fmt::Display;
use std::io::Write;
use std::time::Instant;

/// Throughput annotation (printed alongside timing when set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form (`from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration seconds (filled by `iter`).
    last_per_iter_s: Vec<f64>,
}

impl Bencher {
    /// Run `f` once as warm-up, then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.last_per_iter_s.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.last_per_iter_s.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// Median of a sample set (mean of the middle pair for even counts);
/// the statistic the bench-regression gate compares, as it shrugs off
/// the occasional scheduler hiccup that drags the mean.
fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::INFINITY;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        0.5 * (s[mid - 1] + s[mid])
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let n = b.last_per_iter_s.len().max(1) as f64;
    let mean = b.last_per_iter_s.iter().sum::<f64>() / n;
    let min = b
        .last_per_iter_s
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let med = median(&b.last_per_iter_s);
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_line(&path, &name, med, mean, min, b.last_per_iter_s.len());
        }
    }
    let extra = match throughput {
        Some(Throughput::Elements(e)) if mean > 0.0 => {
            format!("  {:>12.0} elem/s", e as f64 / mean)
        }
        Some(Throughput::Bytes(by)) if mean > 0.0 => {
            format!("  {:>12.0} B/s", by as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<48} median {:>11} mean {:>11} min {:>11}{extra}",
        fmt_s(med),
        fmt_s(mean),
        fmt_s(min)
    );
}

/// Append one machine-readable result line to the `CRITERION_JSON` file.
/// Best-effort: an unwritable path must not fail the bench run itself.
fn append_json_line(path: &str, name: &str, med: f64, mean: f64, min: f64, samples: usize) {
    let line = format!(
        "{{\"name\":\"{}\",\"median_s\":{:.9},\"mean_s\":{:.9},\"min_s\":{:.9},\"samples\":{}}}\n",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        med,
        mean,
        min,
        samples
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion stub: cannot append to {path}: {e}");
    }
}

fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Whether `name` passes the `CRITERION_FILTER` substring filter (real
/// criterion takes the filter as a CLI argument; the stub reads the
/// environment so wrapper scripts can pass it through `cargo bench`
/// without argument plumbing). Empty/unset runs everything.
fn passes_filter(name: &str) -> bool {
    matches_filter(name, std::env::var("CRITERION_FILTER").ok().as_deref())
}

/// The pure predicate behind [`passes_filter`].
fn matches_filter(name: &str, filter: Option<&str>) -> bool {
    match filter {
        Some(f) if !f.is_empty() => name.contains(f),
        _ => true,
    }
}

/// The harness entry point.
pub struct Criterion {
    default_samples: usize,
    samples_forced: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep smoke runs quick; CRITERION_SAMPLES overrides — and when
        // set it is authoritative, winning over in-bench `sample_size`
        // calls, so operators (the bench-regression check) can raise the
        // sample count past a group's smoke-run setting.
        let env = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok());
        Self {
            default_samples: env.unwrap_or(3),
            samples_forced: env.is_some(),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        if !passes_filter(&id) {
            return self;
        }
        let mut b = Bencher {
            samples: self.default_samples,
            last_per_iter_s: Vec::new(),
        };
        f(&mut b);
        report("", &id, &b, None);
        self
    }
}

/// A group of related benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion floors at 10; the stub keeps runs short instead, but
        // still scales down when callers ask for fewer samples. An
        // explicit CRITERION_SAMPLES wins outright.
        if !self._c.samples_forced {
            self.samples = n.min(self.samples.max(1)).max(1);
        }
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        if !passes_filter(&format!("{}/{}", self.name, id)) {
            return self;
        }
        let mut b = Bencher {
            samples: self.samples,
            last_per_iter_s: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id, &b, self.throughput);
        self
    }

    /// Benchmark a closure against an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        if !passes_filter(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut b = Bencher {
            samples: self.samples,
            last_per_iter_s: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 2, "closure must actually run");
    }

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), f64::INFINITY);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        // Exercise the pure predicate: mutating CRITERION_FILTER here
        // would race the other tests in this binary, which run benches.
        assert!(matches_filter("cluster/hier_4096n_halo", None));
        assert!(matches_filter(
            "cluster/hier_4096n_halo",
            Some("hier_4096n")
        ));
        assert!(!matches_filter("cluster/flat_1024n", Some("hier_4096n")));
        assert!(
            matches_filter("cluster/flat_1024n", Some("")),
            "empty runs all"
        );
    }

    #[test]
    fn json_lines_append_and_escape() {
        let path = std::env::temp_dir().join("criterion_stub_json_test.jsonl");
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);
        append_json_line(path, "g/one", 1e-3, 1.1e-3, 0.9e-3, 3);
        append_json_line(path, "g/\"two\"", 2e-3, 2.0e-3, 2.0e-3, 1);
        let text = std::fs::read_to_string(path).expect("file written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one JSON line per bench");
        assert!(lines[0].contains("\"name\":\"g/one\""));
        assert!(lines[0].contains("\"median_s\":0.001000000"));
        assert!(lines[1].contains("\\\"two\\\""), "quotes escaped");
        let _ = std::fs::remove_file(path);
    }
}
