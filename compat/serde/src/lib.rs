//! Offline stand-in for the `serde` facade.
//!
//! The container this repository builds in has no registry access, and the
//! codebase uses serde purely as derive decoration (no call site actually
//! serializes anything). This crate keeps the source compatible with real
//! serde — `use serde::{Deserialize, Serialize}` plus `#[derive(...)]`
//! with `#[serde(...)]` helper attributes — while the derive macros expand
//! to nothing. Swap the workspace dependency back to crates.io serde to
//! regain real serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    #[test]
    fn derives_accept_helper_attributes() {
        #[derive(Debug, Clone, PartialEq, crate::Serialize, crate::Deserialize)]
        struct S {
            #[serde(default = "d")]
            x: f64,
        }
        fn d() -> f64 {
            1.0
        }
        let _ = d;
        let s = S { x: 2.0 };
        assert_eq!(s.clone(), s);
    }
}
