//! Offline stand-in for the `rand` crate (0.9-flavoured API subset).
//!
//! Implements exactly what this workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over numeric
//! ranges, all backed by a deterministic SplitMix64 generator. Determinism
//! is load-bearing here — workload calibration derives per-iteration noise
//! from seeded draws, and experiment results must be reproducible
//! bit-for-bit across runs and machines.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample types that can be drawn uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The minimal generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// A value uniformly distributed over `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform value of type `bool` / `u64` / `f64` in its natural range.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<G: RngCore + Sized> Rng for G {}

/// Types drawable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map 64 random bits onto [0, 1) with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        // 53-bit grid over the closed interval; endpoint-inclusive.
        let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        a + t * (b - a)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator — the stand-in for
    /// `rand::rngs::SmallRng`. Passes through every seed unchanged, so a
    /// given seed always yields the same stream on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0f64..1.0), b.random_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.random_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let i = r.random_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn draws_are_not_constant() {
        let mut r = SmallRng::seed_from_u64(1);
        let first = r.random_range(0.0f64..1.0);
        assert!((0..64).any(|_| r.random_range(0.0f64..1.0) != first));
    }
}
