//! No-op `serde_derive` stand-in for offline builds.
//!
//! The repository only ever uses serde as derive decoration — nothing is
//! actually serialized — so the derives accept the full attribute syntax
//! (`#[serde(default = "...")]` and friends) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
