//! Offline stand-in for `parking_lot`: a non-poisoning [`Mutex`] with the
//! `lock()`-returns-guard API, over `std::sync::Mutex`.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error: like parking_lot, a
/// panic while holding the lock does not poison it for later users.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
