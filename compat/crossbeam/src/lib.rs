//! Offline stand-in for `crossbeam`, providing the `channel::unbounded`
//! subset this workspace uses, implemented over `std::sync::mpsc`.

/// MPMC-ish channels (MPSC underneath — sufficient for the progress bus,
/// where each receiver is owned by exactly one subscriber).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving half is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Queue a value; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Iterate over values currently queued, without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_preserves_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            t.join().unwrap();
            assert_eq!(rx.try_iter().count(), 1000);
        }
    }
}
