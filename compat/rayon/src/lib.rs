//! Offline stand-in for `rayon`, covering the subset this workspace uses:
//! `par_iter()` / `into_par_iter()` followed by `.map(f).collect()`.
//!
//! Work really does run in parallel — items are distributed over
//! `available_parallelism()` scoped threads through an atomic cursor — and
//! `collect` preserves input order, matching rayon's indexed semantics.
//! Parameter sweeps are embarrassingly parallel with coarse items (whole
//! simulation runs), so an atomic-cursor work queue is all the scheduling
//! the workload needs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Public prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Owned-item parallel iteration (`vec.into_par_iter()`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowed-item parallel iteration (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced by the iterator.
    type Item: Send + 'a;
    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Map each item through `f` in parallel.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, executed on `collect`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Execute the map across threads and collect results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<<F as ItemFn<I>>::Out>,
        F: ItemFn<I> + Sync,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let slots: Vec<Mutex<Option<I>>> = self
            .items
            .into_iter()
            .map(|i| Mutex::new(Some(i)))
            .collect();
        let out: Vec<Mutex<Option<F::Out>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let f = &self.f;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("slot taken once");
                    let r = f.call(item);
                    *out[i].lock().unwrap() = Some(r);
                });
            }
        });
        C::from_ordered(
            out.into_iter()
                .map(|m| m.into_inner().unwrap().expect("worker filled slot")),
        )
    }
}

/// Helper trait naming the closure's output type (stable-Rust substitute
/// for `F: Fn(I) -> O` appearing in two bounds at once).
pub trait ItemFn<I> {
    /// The closure's return type.
    type Out: Send;
    /// Invoke the closure.
    fn call(&self, item: I) -> Self::Out;
}

impl<I, O: Send, F: Fn(I) -> O> ItemFn<I> for F {
    type Out = O;
    fn call(&self, item: I) -> O {
        self(item)
    }
}

/// Ordered collection from a parallel iterator.
pub trait FromParallelIterator<T> {
    /// Build the collection from items already in input order.
    fn from_ordered(iter: impl Iterator<Item = T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(iter: impl Iterator<Item = T>) -> Self {
        iter.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_maps_in_order() {
        let v: Vec<i64> = (0..1000).collect();
        let out: Vec<i64> = v.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = vec![];
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let _: Vec<()> = v
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let n = ids.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected work on >1 thread, saw {n}");
        }
    }
}
