//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings and an optional `#![proptest_config(...)]`
//! header, numeric range strategies, tuples of strategies,
//! `prop::collection::vec`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//! cases are generated from a fixed per-test seed (derived from the test
//! name), so failures are reproducible run-to-run; there is no shrinking —
//! on failure the offending inputs are printed verbatim instead.

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then ensure a nonzero state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` (minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values — mirror of `Strategy::prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Derive a dependent strategy from generated values — mirror of
    /// `Strategy::prop_flat_map`.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase the strategy — mirror of `Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy — mirror of `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Strategy that always yields a clone of one value — mirror of
/// `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies — the expansion of [`prop_oneof!`].
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union drawing each branch with probability `weight / Σ weights`.
    pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = branches.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "union needs positive total weight");
        Self { branches, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered the draw range")
    }
}

/// Choose between strategies, optionally weighted (`w => strategy`) —
/// mirror of `proptest::prop_oneof!`. All branches must yield the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:literal => $s:expr ),+ $(,)? ) => {
        $crate::Union::new_weighted(vec![
            $( ($w as u32, ::std::boxed::Box::new($s) as $crate::BoxedStrategy<_>) ),+
        ])
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, ::std::boxed::Box::new($s) as $crate::BoxedStrategy<_>) ),+
        ])
    };
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range strategy");
        let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        a + t * (b - a)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` — mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs — mirror of `proptest::prelude`.
pub mod prelude {
    /// Path alias so `prop::collection::vec(...)` works as with real
    /// proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; prints the failing expression via `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test entry point. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic generated cases; on
/// failure the generated inputs are printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// Float ranges respect their bounds.
        #[test]
        fn float_ranges_bounded(x in -2.5f64..7.5, y in 0.0f64..=1.0) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        /// Integer ranges respect their bounds.
        #[test]
        fn int_ranges_bounded(n in 3usize..10, m in 0u64..=5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(m <= 5);
        }

        /// Vec strategy honours both element and length constraints, with
        /// tuple element strategies.
        #[test]
        fn vec_of_tuples(v in prop::collection::vec((0u64..100, 0.0f64..1.0), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 100);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        /// `any` produces varying values.
        #[test]
        fn any_works(b in any::<bool>(), n in any::<u64>()) {
            let _ = (b, n);
        }

        /// Combinators compose: map, flat_map, oneof, Just.
        #[test]
        fn combinators_compose(
            v in (1usize..5).prop_flat_map(|n| {
                prop::collection::vec(
                    prop_oneof![1 => Just(-1.0f64), 3 => (0.0f64..10.0).prop_map(|x| x * 2.0)],
                    n..n + 1,
                )
            }),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x == -1.0 || (0.0..20.0).contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        let s = 0.0f64..1.0;
        for _ in 0..20 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
