//! # powerprog
//!
//! A from-scratch, laptop-scale reproduction of
//! **"Understanding the Impact of Dynamic Power Capping on Application
//! Progress"** (S. Ramesh, S. Perarnau, S. Bhalachandra, A. D. Malony,
//! P. Beckman — IPDPS Workshops 2019), built as a production-quality Rust
//! workspace.
//!
//! The paper defines an *online, application-specific notion of progress*,
//! instruments production HPC applications to publish it at runtime,
//! applies dynamic RAPL power-capping schemes from a node-level daemon,
//! and proposes + validates an analytic model (its Eqs. 1–7) of the change
//! in progress a package power cap causes.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`simnode`] | simulated node: DVFS ladder, RAPL controller, DDCM, uncore/bandwidth, hardware counters, MSRs behind an `msr-safe`-style allow-list |
//! | [`proxyapps`] | calibrated proxy applications (LAMMPS, STREAM, AMG, QMCPACK, OpenMC, CANDLE, Listing-1, HACC, Nek5000, URBAN) + a simulated SPMD runtime |
//! | [`progress`] | the progress pub-sub bus, 1 Hz aggregation, taxonomy and the paper's application registry |
//! | [`nrm`] | the node resource manager: capping schemes, actuators, policies, multi-component composition |
//! | [`powermodel`] | the analytic model: β, MPO, Eqs. 1–7, α fitting, error metrics |
//! | [`powerprog_core`] | the experiment harness regenerating every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use powerprog::prelude::*;
//!
//! // Run LAMMPS uncapped for 5 simulated seconds and read its progress.
//! let cfg = RunConfig::new(AppId::Lammps, 5 * SEC);
//! let run = run_app(&cfg);
//! let rate = run.steady_rate(); // katom-timesteps per second
//! assert!(rate > 900.0 && rate < 1200.0);
//!
//! // Predict what a 90 W package cap would cost (paper Eq. 7).
//! let model = ProgressModel::from_uncapped_run(1.0, 2.0, run.mean_power(), rate);
//! let delta = model.predict_delta(90.0);
//! assert!(delta > 0.0);
//! ```

pub use nrm;
pub use powermodel;
pub use powerprog_core as core;
pub use progress;
pub use proxyapps;
pub use simnode;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use nrm::actuator::ActuatorKind;
    pub use nrm::composition::CompositeProgress;
    pub use nrm::daemon::NrmDaemon;
    pub use nrm::job::{JobPolicy, JobPowerManager, ManagedNode};
    pub use nrm::resilience::{MsrPowerSensor, ResilienceConfig, ResilientDaemon};
    pub use nrm::scheme::{
        CapSchedule, ConstantCap, JaggedEdge, LinearDecay, StepFunction, Uncapped,
    };
    pub use powermodel::beta::beta_from_times;
    pub use powermodel::mpo::mpo;
    pub use powermodel::predict::{ProgressModel, PAPER_ALPHA};
    pub use powerprog_core::runner::{run_app, RunArtifacts, RunConfig, ScheduleSpec};
    pub use progress::aggregator::ProgressAggregator;
    pub use progress::bus::{BusConfig, DropPolicy, ProgressBus};
    pub use progress::imbalance::{analyze as analyze_imbalance, ImbalanceError, ImbalanceReport};
    pub use progress::series::TimeSeries;
    pub use progress::taxonomy::Category;
    pub use progress::watchdog::{Health, ProgressWatchdog, WatchdogConfig};
    pub use proxyapps::catalog::{build, AppId, AppInstance};
    pub use proxyapps::runtime::{Action, Driver, Program};
    pub use proxyapps::spec::KernelSpec;
    pub use simnode::config::NodeConfig;
    pub use simnode::faults::{FaultKind, FaultPlan, FaultSpec, FaultWindow};
    pub use simnode::node::{CoreWork, Node, WorkPacket};
    pub use simnode::time::{Nanos, MS, SEC, US};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let cfg = NodeConfig::default();
        let app = build(AppId::Stream, &cfg, 8, 1);
        assert_eq!(app.programs.len(), 8);
        let model = ProgressModel::new(0.37, PAPER_ALPHA, 44.0, 16.0);
        assert!(model.predict_rate(80.0) > 0.0);
    }
}
